//! Fixed sim-time bucket counters: the `timeseries` section of
//! `titan-obs/2`.
//!
//! The paper's trend figures (weekly error rates, the Jan-14 driver
//! cutover) need time-resolved counts, not run-end totals. A
//! [`TimeBuckets`] sink counts a curated subset of engine events into
//! fixed-width sim-time buckets (default one week), so one run's
//! metrics document shows the whole trend. Bucketing is pure integer
//! arithmetic on sim timestamps — nothing here can perturb a run or
//! break byte-identity.

use titan_conlog::time::SimTime;

/// Default bucket width: one week of sim time, matching the paper's
/// weekly-rate figures.
pub const DEFAULT_BUCKET_SECS: u64 = 7 * 86_400;

/// The curated counter subset carried as time series. Each variant
/// mirrors the engine counter of the same name; a runner test pins that
/// the buckets of each series sum exactly to the run-end counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsSeries {
    /// Console lines emitted (`engine.console_lines`).
    ConsoleLines,
    /// DBE events executed (`engine.ev_dbe`).
    EvDbe,
    /// Off-the-bus events executed (`engine.ev_otb`).
    EvOtb,
    /// SBE draft events executed (`engine.ev_sbe`).
    EvSbe,
    /// SBE drafts accepted after thinning (`engine.sbe_accepted`).
    SbeAccepted,
    /// Hot-spare swaps fired (`engine.swaps_fired`).
    SwapsFired,
}

impl TsSeries {
    /// All series, in stable export order.
    pub const ALL: [TsSeries; 6] = [
        TsSeries::ConsoleLines,
        TsSeries::EvDbe,
        TsSeries::EvOtb,
        TsSeries::EvSbe,
        TsSeries::SbeAccepted,
        TsSeries::SwapsFired,
    ];

    /// Stable name used as the key in the metrics document (matches the
    /// engine counter it shadows).
    pub fn name(self) -> &'static str {
        match self {
            TsSeries::ConsoleLines => "console_lines",
            TsSeries::EvDbe => "ev_dbe",
            TsSeries::EvOtb => "ev_otb",
            TsSeries::EvSbe => "ev_sbe",
            TsSeries::SbeAccepted => "sbe_accepted",
            TsSeries::SwapsFired => "swaps_fired",
        }
    }

    fn index(self) -> usize {
        match self {
            TsSeries::ConsoleLines => 0,
            TsSeries::EvDbe => 1,
            TsSeries::EvOtb => 2,
            TsSeries::EvSbe => 3,
            TsSeries::SbeAccepted => 4,
            TsSeries::SwapsFired => 5,
        }
    }
}

/// Bucketed counters for every [`TsSeries`]. Buckets grow on demand, so
/// the sink needs no window length up front; the exporter pads every
/// series to the window's bucket count.
#[derive(Debug)]
pub struct TimeBuckets {
    enabled: bool,
    bucket_secs: u64,
    series: [Vec<u64>; 6],
}

impl TimeBuckets {
    /// A sink with `bucket_secs`-wide buckets (clamped to ≥ 1).
    pub fn new(enabled: bool, bucket_secs: u64) -> Self {
        TimeBuckets {
            enabled,
            bucket_secs: bucket_secs.max(1),
            series: Default::default(),
        }
    }

    /// Bucket width in sim seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_secs
    }

    /// Counts one event of `series` at sim time `t` (no-op disabled).
    #[inline]
    pub fn inc(&mut self, series: TsSeries, t: SimTime) {
        if !self.enabled {
            return;
        }
        // lint: allow(N1, bucket index: window/bucket_secs is far below 2^32 for any real window)
        let bucket = (t / self.bucket_secs) as usize;
        let v = &mut self.series[series.index()];
        if v.len() <= bucket {
            v.resize(bucket + 1, 0);
        }
        v[bucket] += 1;
    }

    /// The raw (unpadded) buckets of one series.
    pub fn series(&self, series: TsSeries) -> &[u64] {
        &self.series[series.index()]
    }

    /// One series padded with trailing zeros to `n_buckets` (the export
    /// shape: every series the same length, covering the whole window).
    pub fn padded(&self, series: TsSeries, n_buckets: usize) -> Vec<u64> {
        let mut v = self.series(series).to_vec();
        if v.len() < n_buckets {
            v.resize(n_buckets, 0);
        }
        v
    }

    /// Overwrites one series wholesale (checkpoint restore). No-op when
    /// disabled, preserving the disabled-sink-is-inert invariant.
    pub fn restore(&mut self, series: TsSeries, buckets: &[u64]) {
        if !self.enabled {
            return;
        }
        if let Some(v) = self.series.get_mut(series.index()) {
            *v = buckets.to_vec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_by_fixed_width() {
        let mut ts = TimeBuckets::new(true, 100);
        ts.inc(TsSeries::EvDbe, 0);
        ts.inc(TsSeries::EvDbe, 99);
        ts.inc(TsSeries::EvDbe, 100);
        ts.inc(TsSeries::EvDbe, 350);
        assert_eq!(ts.series(TsSeries::EvDbe), &[2, 1, 0, 1]);
        assert!(ts.series(TsSeries::EvOtb).is_empty());
    }

    #[test]
    fn padding_extends_with_zeros_only() {
        let mut ts = TimeBuckets::new(true, 100);
        ts.inc(TsSeries::SwapsFired, 150);
        assert_eq!(ts.padded(TsSeries::SwapsFired, 4), vec![0, 1, 0, 0]);
        // Never truncates.
        assert_eq!(ts.padded(TsSeries::SwapsFired, 1), vec![0, 1]);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let mut ts = TimeBuckets::new(false, 100);
        ts.inc(TsSeries::ConsoleLines, 5);
        assert!(ts.series(TsSeries::ConsoleLines).is_empty());
        assert_eq!(ts.padded(TsSeries::ConsoleLines, 2), vec![0, 0]);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let ts = TimeBuckets::new(true, 0);
        assert_eq!(ts.bucket_secs(), 1);
    }
}
