//! Bounded structured tracing in the simulation time domain.
//!
//! Spans are fixed-size records carrying **sim timestamps only** — the
//! ring's contents are part of the deterministic metrics document, so a
//! wall-clock value here would break byte-identical replication (and
//! trip lint D5). When the ring is full the oldest span is evicted and
//! counted in `dropped`, so memory stays bounded on 638-day windows
//! while totals remain exact via the `by_kind` counters.

use titan_conlog::time::SimTime;

/// The span taxonomy. Keep in sync with OBSERVABILITY.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One job from scheduler start to end; `key` = job id, `extra` =
    /// node count.
    JobLifecycle,
    /// Fault event → deferred SEC-visible record; `key` = card serial,
    /// `extra` = retirement cause discriminant.
    FaultChain,
    /// Hot-spare swap from schedule to fire; `key` = slot index,
    /// `extra` = card serial.
    HotSpareSwap,
    /// Repair/reboot sequence after a fatal event; `key` = node id,
    /// `extra` = event class discriminant.
    RepairReboot,
}

impl SpanKind {
    /// All kinds in stable export order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::JobLifecycle,
        SpanKind::FaultChain,
        SpanKind::HotSpareSwap,
        SpanKind::RepairReboot,
    ];

    /// Stable snake_case name used in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::JobLifecycle => "job_lifecycle",
            SpanKind::FaultChain => "fault_chain",
            SpanKind::HotSpareSwap => "hot_spare_swap",
            SpanKind::RepairReboot => "repair_reboot",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::JobLifecycle => 0,
            SpanKind::FaultChain => 1,
            SpanKind::HotSpareSwap => 2,
            SpanKind::RepairReboot => 3,
        }
    }
}

/// One completed span. `key`/`extra` are kind-specific identifiers
/// (see [`SpanKind`]); instantaneous events use `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Taxonomy bucket.
    pub kind: SpanKind,
    /// Sim time the span opened.
    pub start: SimTime,
    /// Sim time the span closed (`>= start`).
    pub end: SimTime,
    /// Primary identifier (job id, card serial, slot, node).
    pub key: u64,
    /// Secondary payload (node count, cause, serial, class).
    pub extra: u64,
}

/// Bounded ring of completed spans plus exact per-kind totals.
#[derive(Debug)]
pub struct TraceRing {
    enabled: bool,
    capacity: usize,
    buf: Vec<Span>,
    /// Index of the oldest span once the ring has wrapped.
    head: usize,
    recorded: u64,
    by_kind: [u64; 4],
}

impl TraceRing {
    /// A ring holding at most `capacity` spans (counters stay exact
    /// past that). Disabled rings drop everything for free.
    pub fn new(enabled: bool, capacity: usize) -> Self {
        TraceRing {
            enabled,
            capacity: capacity.max(1),
            buf: Vec::new(),
            head: 0,
            recorded: 0,
            by_kind: [0; 4],
        }
    }

    /// Records a completed span (no-op when disabled).
    #[inline]
    pub fn record(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        self.by_kind[span.kind.index()] += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total spans ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact per-kind totals, in [`SpanKind::ALL`] order.
    pub fn counts_by_kind(&self) -> [(SpanKind, u64); 4] {
        [
            (SpanKind::JobLifecycle, self.by_kind[0]),
            (SpanKind::FaultChain, self.by_kind[1]),
            (SpanKind::HotSpareSwap, self.by_kind[2]),
            (SpanKind::RepairReboot, self.by_kind[3]),
        ]
    }

    /// The retained spans, oldest first (record order — deterministic,
    /// since the engine records in event order).
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Overwrites the ring wholesale from a checkpoint: `spans` oldest
    /// first (only the newest `capacity` are kept, matching what the
    /// ring would hold had it seen them live), with exact totals. No-op
    /// when disabled.
    pub fn restore(&mut self, spans: &[Span], recorded: u64, by_kind: [u64; 4]) {
        if !self.enabled {
            return;
        }
        let skip = spans.len().saturating_sub(self.capacity);
        self.buf = spans.get(skip..).unwrap_or(&[]).to_vec();
        self.head = 0;
        self.recorded = recorded;
        self.by_kind = by_kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: SimTime) -> Span {
        Span { kind, start, end: start + 1, key: start, extra: 0 }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(true, 3);
        for t in 0..5 {
            r.record(span(SpanKind::JobLifecycle, t));
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<_> = r.spans().iter().map(|s| s.start).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn by_kind_totals_are_exact_past_capacity() {
        let mut r = TraceRing::new(true, 2);
        for t in 0..4 {
            r.record(span(SpanKind::FaultChain, t));
        }
        r.record(span(SpanKind::HotSpareSwap, 9));
        let counts = r.counts_by_kind();
        assert_eq!(counts[1], (SpanKind::FaultChain, 4));
        assert_eq!(counts[2], (SpanKind::HotSpareSwap, 1));
    }

    #[test]
    fn disabled_ring_is_inert() {
        let mut r = TraceRing::new(false, 4);
        r.record(span(SpanKind::RepairReboot, 1));
        assert_eq!(r.recorded(), 0);
        assert!(r.spans().is_empty());
    }

    #[test]
    fn partial_ring_returns_in_order() {
        let mut r = TraceRing::new(true, 10);
        r.record(span(SpanKind::JobLifecycle, 1));
        r.record(span(SpanKind::JobLifecycle, 2));
        let kept: Vec<_> = r.spans().iter().map(|s| s.start).collect();
        assert_eq!(kept, vec![1, 2]);
    }
}
