//! titan-trace: the causal flight recorder.
//!
//! The paper's methodology is provenance stitching — correlating a
//! fault's console lines, SEC alerts, and nvidia-smi rollups across 21
//! months to attribute every failure. This module gives the simulator
//! the same capability over its own runs: a [`TraceStream`] mints one
//! monotonically increasing [`TraceRecord`] id per observable step, and
//! each record names its causal parent, so a page retirement or an SEC
//! alert can be walked back to the exact injected fault draft that
//! caused it.
//!
//! Determinism contract (same as the rest of this crate): ids come from
//! a plain counter, never the RNG streams; timestamps are sim-time only
//! (lint D5); a disabled stream is a no-op returning id 0 everywhere,
//! so tracing can never perturb a run. The rendered JSONL is therefore
//! byte-identical for a fixed seed at any thread width.
//!
//! On-disk format (`titan-trace/1`, S1-guarded): line 1 is a
//! [`TraceHeader`], every following line one [`TraceRecord`], compact
//! JSON, one per line, ids strictly increasing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_conlog::time::SimTime;

/// Schema identifier written into every trace header.
pub const TRACE_SCHEMA: &str = "titan-trace/1";

/// The record taxonomy, in causal-chain order. Root records are always
/// `FaultDraft`; everything else names a parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An injected fault draft (DBE / OTB / SBE / software XID) — the
    /// only kind allowed at the root of a chain (`parent == 0`).
    FaultDraft,
    /// The engine executing a fault event against the fleet.
    EngineEvent,
    /// One console-log line emitted for an engine event.
    ConsoleLine,
    /// A page-retirement decision (emitted or not) on a card.
    Retirement,
    /// An SEC action produced at collect time from a console line.
    SecAlert,
    /// An end-of-study nvidia-smi rollup of a card's retired pages.
    NvsmiRollup,
}

impl TraceKind {
    /// All kinds, in stable summary order.
    pub const ALL: [TraceKind; 6] = [
        TraceKind::FaultDraft,
        TraceKind::EngineEvent,
        TraceKind::ConsoleLine,
        TraceKind::Retirement,
        TraceKind::SecAlert,
        TraceKind::NvsmiRollup,
    ];

    /// Stable snake_case name used in the JSONL records.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FaultDraft => "fault_draft",
            TraceKind::EngineEvent => "engine_event",
            TraceKind::ConsoleLine => "console_line",
            TraceKind::Retirement => "retirement",
            TraceKind::SecAlert => "sec_alert",
            TraceKind::NvsmiRollup => "nvsmi_rollup",
        }
    }

    /// Inverse of [`TraceKind::name`].
    pub fn parse(name: &str) -> Option<TraceKind> {
        TraceKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// First line of a trace file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Schema identifier ([`TRACE_SCHEMA`]).
    pub schema: String,
    /// Seed the traced window ran with.
    pub seed: u64,
    /// Window length in days.
    pub window_days: u64,
    /// Number of record lines that follow.
    pub records: u64,
}

/// One flight-recorder record. Field order is frozen by the
/// `titan-trace-1` golden spec (lint S1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic id, unique within a run, starting at 1.
    pub id: u64,
    /// Causal parent id; 0 marks a chain root (always a fault draft).
    pub parent: u64,
    /// Stable kind name (see [`TraceKind::name`]).
    pub kind: String,
    /// Sim time (seconds since window start) of the step.
    pub ts: u64,
    /// Card serial, when the step is card-scoped.
    pub card: Option<u64>,
    /// Node id, when the step is node-scoped.
    pub node: Option<u64>,
    /// Application id (apid), when a job was involved.
    pub apid: Option<u64>,
    /// Short human-readable detail, stable per record kind.
    pub payload: String,
}

/// The deterministic trace sink threaded through a run. Disabled
/// streams mint id 0 and record nothing, so the engine code is
/// identical on both paths.
#[derive(Debug)]
pub struct TraceStream {
    enabled: bool,
    next: u64,
    records: Vec<TraceRecord>,
    /// `(ts, id)` of every console-line record in emission order; the
    /// engine sorts its console log by time *stably* after the loop, so
    /// a stable sort of this list by `ts` reproduces the exact post-sort
    /// console order (used to align SEC replay with console lines).
    console: Vec<(u64, u64)>,
}

impl TraceStream {
    /// A stream with recording on or off.
    pub fn new(enabled: bool) -> Self {
        TraceStream {
            enabled,
            next: 1,
            records: Vec::new(),
            console: Vec::new(),
        }
    }

    /// Whether the stream records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Mints the next record and returns its id (0 when disabled; the
    /// payload closure is never called then, so the disabled path costs
    /// one branch).
    #[inline]
    pub fn mint(
        &mut self,
        kind: TraceKind,
        parent: u64,
        ts: SimTime,
        card: Option<u64>,
        node: Option<u64>,
        apid: Option<u64>,
        payload: impl FnOnce() -> String,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        let id = self.next;
        self.next += 1;
        self.records.push(TraceRecord {
            id,
            parent,
            kind: kind.name().to_string(),
            ts,
            card,
            node,
            apid,
            payload: payload(),
        });
        id
    }

    /// [`TraceStream::mint`] for a console line; additionally remembers
    /// the `(ts, id)` pair so collect-time SEC replay can align alerts
    /// with the time-sorted console log.
    #[inline]
    pub fn mint_console(
        &mut self,
        parent: u64,
        ts: SimTime,
        card: Option<u64>,
        node: Option<u64>,
        apid: Option<u64>,
        payload: impl FnOnce() -> String,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        let id = self.mint(TraceKind::ConsoleLine, parent, ts, card, node, apid, payload);
        self.console.push((ts, id));
        id
    }

    /// All records minted so far, in id order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The id the next [`TraceStream::mint`] call will return — the
    /// trace-id watermark carried in checkpoints.
    pub fn next_id(&self) -> u64 {
        self.next
    }

    /// Raw `(ts, id)` console pairs in emission order (the input to
    /// [`TraceStream::console_ids_in_log_order`]); checkpoints carry
    /// these verbatim so a resumed stream aligns SEC replay the same
    /// way.
    pub fn console_pairs(&self) -> &[(u64, u64)] {
        &self.console
    }

    /// Overwrites the stream wholesale from a checkpoint: id watermark,
    /// minted records, and console `(ts, id)` pairs. No-op when
    /// disabled, preserving the disabled-stream-is-inert invariant.
    pub fn restore(&mut self, next: u64, records: Vec<TraceRecord>, console: Vec<(u64, u64)>) {
        if !self.enabled {
            return;
        }
        self.next = next.max(1);
        self.records = records;
        self.console = console;
    }

    /// Console-line record ids reordered to match the engine's final
    /// console log: the engine pushes lines in heap order and stably
    /// sorts by time afterwards, so a stable sort of the emission-order
    /// `(ts, id)` pairs by `ts` yields the id of console line *i* at
    /// index *i* of `SimOutput::console`.
    pub fn console_ids_in_log_order(&self) -> Vec<u64> {
        let mut pairs = self.console.clone();
        pairs.sort_by_key(|&(ts, _)| ts);
        pairs.into_iter().map(|(_, id)| id).collect()
    }

    /// Renders the full stream as `titan-trace/1` JSONL (header first,
    /// one compact JSON record per line, trailing newline).
    pub fn render_jsonl(&self, seed: u64, window_days: u64) -> String {
        let header = TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            seed,
            window_days,
            // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
            records: self.records.len() as u64,
        };
        let mut out = serde_json::to_string(&header).unwrap_or_else(|_| "{}".to_string());
        out.push('\n');
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).unwrap_or_else(|_| "{}".to_string()));
            out.push('\n');
        }
        out
    }
}

/// Parses a `titan-trace/1` JSONL document back into header + records.
pub fn parse_trace(text: &str) -> Result<(TraceHeader, Vec<TraceRecord>), String> {
    let mut lines = text.lines();
    let first = lines.next().ok_or("empty trace file")?;
    let header: TraceHeader =
        serde_json::from_str(first).map_err(|e| format!("trace header: {e}"))?;
    if header.schema != TRACE_SCHEMA {
        return Err(format!(
            "unsupported trace schema `{}` (expected `{TRACE_SCHEMA}`)",
            header.schema
        ));
    }
    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let r: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 2))?;
        records.push(r);
    }
    Ok((header, records))
}

/// Outcome of a provenance walk over a parsed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Records examined.
    pub records: u64,
    /// Terminal records (SEC alerts, retirements, nvsmi rollups) whose
    /// chains were walked to a root.
    pub chains_walked: u64,
    /// Longest chain found (root = depth 1).
    pub max_depth: u64,
    /// Every provenance violation found; empty means the trace proves
    /// complete fault-to-alert attribution.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// Whether the trace passed.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Cap on error spam: verification keeps going but stops *recording*
/// individual violations past this count.
const MAX_VERIFY_ERRORS: usize = 20;

/// Walks every record's provenance: ids must be strictly increasing,
/// parents must exist and precede their children (which also rules out
/// cycles), only fault drafts may be roots, and every SEC alert,
/// retirement, and nvsmi rollup must chase back to an injected fault
/// draft.
pub fn verify_trace(header: &TraceHeader, records: &[TraceRecord]) -> VerifyReport {
    let mut report = VerifyReport {
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        records: records.len() as u64,
        chains_walked: 0,
        max_depth: 0,
        errors: Vec::new(),
    };
    let err = |errors: &mut Vec<String>, msg: String| {
        if errors.len() < MAX_VERIFY_ERRORS {
            errors.push(msg);
        }
    };
    if header.records != report.records {
        err(
            &mut report.errors,
            format!(
                "header claims {} records, file holds {}",
                header.records, report.records
            ),
        );
    }

    // Pass 1: structural checks + parent index.
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    let mut prev_id = 0u64;
    for (i, r) in records.iter().enumerate() {
        if r.id <= prev_id {
            err(
                &mut report.errors,
                format!("record {} id {} not strictly increasing", i + 1, r.id),
            );
        }
        prev_id = r.id;
        let kind = TraceKind::parse(&r.kind);
        if kind.is_none() {
            err(
                &mut report.errors,
                format!("record id {} has unknown kind `{}`", r.id, r.kind),
            );
        }
        if r.parent == 0 {
            if kind != Some(TraceKind::FaultDraft) {
                err(
                    &mut report.errors,
                    format!("record id {} ({}) is an orphan root", r.id, r.kind),
                );
            }
        } else {
            if r.parent >= r.id {
                err(
                    &mut report.errors,
                    format!(
                        "record id {} parent {} does not precede it (cycle/forward ref)",
                        r.id, r.parent
                    ),
                );
            }
            if !by_id.contains_key(&r.parent) {
                err(
                    &mut report.errors,
                    format!("record id {} parent {} does not exist", r.id, r.parent),
                );
            }
        }
        if kind == Some(TraceKind::FaultDraft) && r.parent != 0 {
            err(
                &mut report.errors,
                format!("fault draft id {} has a parent ({})", r.id, r.parent),
            );
        }
        by_id.insert(r.id, i);
    }

    // Pass 2: chase every terminal record to a fault-draft root.
    for r in records {
        let terminal = matches!(
            TraceKind::parse(&r.kind),
            Some(TraceKind::SecAlert | TraceKind::Retirement | TraceKind::NvsmiRollup)
        );
        if !terminal {
            continue;
        }
        report.chains_walked += 1;
        let mut cur = r;
        let mut depth = 1u64;
        loop {
            if cur.parent == 0 {
                if cur.kind != TraceKind::FaultDraft.name() {
                    err(
                        &mut report.errors,
                        format!(
                            "chain from {} id {} ends at {} id {} (not a fault draft)",
                            r.kind, r.id, cur.kind, cur.id
                        ),
                    );
                }
                break;
            }
            let Some(&idx) = by_id.get(&cur.parent) else {
                // Already reported as a missing parent in pass 1.
                break;
            };
            let next = &records[idx];
            if next.id >= cur.id {
                // Already reported as a forward ref in pass 1; stop so
                // a malformed file cannot loop the walker.
                break;
            }
            cur = next;
            depth += 1;
        }
        report.max_depth = report.max_depth.max(depth);
    }
    report
}

/// Record filter for `trace show`: every set field must match.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Keep records on this card serial.
    pub card: Option<u64>,
    /// Keep records on this node.
    pub node: Option<u64>,
    /// Keep records of this job (apid).
    pub apid: Option<u64>,
    /// Keep records with `lo <= ts <= hi` (sim seconds).
    pub window: Option<(u64, u64)>,
}

impl TraceFilter {
    /// Whether `r` passes every set constraint.
    pub fn matches(&self, r: &TraceRecord) -> bool {
        if let Some(c) = self.card {
            if r.card != Some(c) {
                return false;
            }
        }
        if let Some(n) = self.node {
            if r.node != Some(n) {
                return false;
            }
        }
        if let Some(a) = self.apid {
            if r.apid != Some(a) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.window {
            if r.ts < lo || r.ts > hi {
                return false;
            }
        }
        true
    }
}

/// Renders the `trace summarize` table: per-kind counts and time spans,
/// root/terminal tallies, and the busiest cards.
pub fn summarize_trace(header: &TraceHeader, records: &[TraceRecord]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} — seed {}, {} days, {} records",
        header.schema,
        header.seed,
        header.window_days,
        records.len()
    );
    let _ = writeln!(s, "\nrecords by kind (count, first ts, last ts):");
    for kind in TraceKind::ALL {
        let mut count = 0u64;
        let mut first = u64::MAX;
        let mut last = 0u64;
        for r in records.iter().filter(|r| r.kind == kind.name()) {
            count += 1;
            first = first.min(r.ts);
            last = last.max(r.ts);
        }
        if count == 0 {
            let _ = writeln!(s, "  {:<14} {:>10}", kind.name(), 0);
        } else {
            let _ = writeln!(
                s,
                "  {:<14} {:>10}  t=[{first}, {last}]",
                kind.name(),
                count
            );
        }
    }
    let roots = records.iter().filter(|r| r.parent == 0).count();
    let _ = writeln!(s, "\nchain roots (fault drafts): {roots}");
    let mut per_card: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        if let Some(c) = r.card {
            *per_card.entry(c).or_insert(0) += 1;
        }
    }
    let mut busiest: Vec<(u64, u64)> = per_card.into_iter().collect();
    busiest.sort_by_key(|&(card, n)| (std::cmp::Reverse(n), card));
    busiest.truncate(5);
    if !busiest.is_empty() {
        let _ = writeln!(s, "busiest cards (records):");
        for (card, n) in busiest {
            let _ = writeln!(s, "  card {card:<8} {n:>8}");
        }
    }
    s
}

/// Minimal JSON string escaping for the hand-built Chrome export.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            // lint: allow(N1, char to u32 is the lossless scalar value)
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders records in the Chrome trace-event format (open the file in
/// Perfetto or `about://tracing`). Every record becomes an instant
/// event on its node's track (`tid` = node, 0 when node-less); every
/// parent→child edge becomes a flow-event pair, so chains draw as
/// arrows. One sim second maps to one displayed second (`ts` is µs).
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut loc: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // id -> (ts_us, tid)
    for r in records {
        loc.insert(r.id, (r.ts * 1_000_000, r.node.unwrap_or(0)));
    }
    let mut events: Vec<String> = Vec::new();
    for r in records {
        let (ts_us, tid) = loc[&r.id];
        let mut args = format!("\"id\":{},\"parent\":{}", r.id, r.parent);
        if let Some(c) = r.card {
            args.push_str(&format!(",\"card\":{c}"));
        }
        if let Some(a) = r.apid {
            args.push_str(&format!(",\"apid\":{a}"));
        }
        args.push_str(&format!(",\"payload\":\"{}\"", esc(&r.payload)));
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
            esc(&r.payload),
            esc(&r.kind),
        ));
        if r.parent != 0 {
            if let Some(&(pts, ptid)) = loc.get(&r.parent) {
                events.push(format!(
                    "{{\"name\":\"chain\",\"cat\":\"chain\",\"ph\":\"s\",\"id\":{},\"ts\":{pts},\"pid\":1,\"tid\":{ptid}}}",
                    r.id
                ));
                events.push(format!(
                    "{{\"name\":\"chain\",\"cat\":\"chain\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}}}",
                    r.id
                ));
            }
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft(s: &mut TraceStream, ts: u64) -> u64 {
        s.mint(TraceKind::FaultDraft, 0, ts, None, None, None, || {
            "dbe_draft".to_string()
        })
    }

    #[test]
    fn disabled_stream_mints_zero_and_records_nothing() {
        let mut s = TraceStream::new(false);
        let mut called = false;
        let id = s.mint(TraceKind::FaultDraft, 0, 5, None, None, None, || {
            called = true;
            String::new()
        });
        assert_eq!(id, 0);
        assert!(!called, "payload closure must not run when disabled");
        assert!(s.records().is_empty());
        assert_eq!(s.mint_console(0, 1, None, None, None, String::new), 0);
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let mut s = TraceStream::new(true);
        let a = draft(&mut s, 10);
        let b = s.mint(TraceKind::EngineEvent, a, 10, Some(3), Some(7), None, || {
            "dbe".into()
        });
        assert_eq!((a, b), (1, 2));
        assert_eq!(s.records()[1].parent, 1);
        assert_eq!(s.records()[1].card, Some(3));
    }

    #[test]
    fn console_ids_follow_stable_time_sort() {
        let mut s = TraceStream::new(true);
        let p = draft(&mut s, 0);
        // Emission order: t=50, t=10, t=50 — the engine's stable sort
        // puts t=10 first and keeps the two t=50 lines in push order.
        let a = s.mint_console(p, 50, None, Some(1), None, || "c".into());
        let b = s.mint_console(p, 10, None, Some(2), None, || "c".into());
        let c = s.mint_console(p, 50, None, Some(3), None, || "c".into());
        assert_eq!(s.console_ids_in_log_order(), vec![b, a, c]);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut s = TraceStream::new(true);
        let d = draft(&mut s, 100);
        let e = s.mint(
            TraceKind::EngineEvent,
            d,
            100,
            Some(42),
            Some(7),
            Some(9001),
            || "dbe DeviceMemory".into(),
        );
        s.mint(TraceKind::Retirement, e, 100, Some(42), None, None, || {
            "retire emitted=true".into()
        });
        let text = s.render_jsonl(17, 60);
        assert!(text.starts_with("{\"schema\":\"titan-trace/1\""));
        let (header, records) = parse_trace(&text).expect("parse");
        assert_eq!(header.seed, 17);
        assert_eq!(header.records, 3);
        assert_eq!(records, s.records());
        // Rendering twice is byte-identical.
        assert_eq!(text, s.render_jsonl(17, 60));
    }

    #[test]
    fn verify_passes_a_complete_chain() {
        let mut s = TraceStream::new(true);
        let d = draft(&mut s, 100);
        let e = s.mint(TraceKind::EngineEvent, d, 100, Some(1), Some(2), None, || {
            "dbe".into()
        });
        let c = s.mint_console(e, 100, Some(1), Some(2), None, || "console".into());
        s.mint(TraceKind::SecAlert, c, 100, None, Some(2), None, || {
            "sec alert".into()
        });
        s.mint(TraceKind::Retirement, e, 100, Some(1), None, None, || {
            "retire".into()
        });
        let (h, r) = parse_trace(&s.render_jsonl(1, 30)).unwrap();
        let rep = verify_trace(&h, &r);
        assert!(rep.ok(), "{:?}", rep.errors);
        assert_eq!(rep.chains_walked, 2);
        assert_eq!(rep.max_depth, 4);
    }

    #[test]
    fn verify_flags_orphans_missing_parents_and_bad_headers() {
        let rec = |id, parent, kind: TraceKind| TraceRecord {
            id,
            parent,
            kind: kind.name().to_string(),
            ts: 0,
            card: None,
            node: None,
            apid: None,
            payload: String::new(),
        };
        let header = TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            seed: 0,
            window_days: 1,
            records: 3,
        };
        // An engine event at the root, an alert with a missing parent,
        // and a header count mismatch.
        let records = vec![
            rec(1, 0, TraceKind::EngineEvent),
            rec(2, 99, TraceKind::SecAlert),
        ];
        let rep = verify_trace(&header, &records);
        assert!(!rep.ok());
        assert!(rep.errors.iter().any(|e| e.contains("orphan root")));
        assert!(rep.errors.iter().any(|e| e.contains("does not exist")));
        assert!(rep.errors.iter().any(|e| e.contains("header claims")));
    }

    #[test]
    fn verify_rejects_forward_refs_and_nonmonotonic_ids() {
        let rec = |id, parent, kind: TraceKind| TraceRecord {
            id,
            parent,
            kind: kind.name().to_string(),
            ts: 0,
            card: None,
            node: None,
            apid: None,
            payload: String::new(),
        };
        let header = TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            seed: 0,
            window_days: 1,
            records: 2,
        };
        // A record claiming a *later* parent (would be a cycle if the
        // walker followed it) and a duplicate id.
        let records = vec![
            rec(5, 6, TraceKind::Retirement),
            rec(5, 0, TraceKind::FaultDraft),
        ];
        let rep = verify_trace(&header, &records);
        assert!(rep.errors.iter().any(|e| e.contains("does not precede")));
        assert!(rep
            .errors
            .iter()
            .any(|e| e.contains("not strictly increasing")));
    }

    #[test]
    fn filter_constrains_each_set_field() {
        let r = TraceRecord {
            id: 1,
            parent: 0,
            kind: "fault_draft".into(),
            ts: 500,
            card: Some(3),
            node: Some(9),
            apid: None,
            payload: String::new(),
        };
        assert!(TraceFilter::default().matches(&r));
        assert!(TraceFilter { card: Some(3), ..Default::default() }.matches(&r));
        assert!(!TraceFilter { card: Some(4), ..Default::default() }.matches(&r));
        assert!(!TraceFilter { apid: Some(1), ..Default::default() }.matches(&r));
        assert!(TraceFilter { window: Some((0, 500)), ..Default::default() }.matches(&r));
        assert!(!TraceFilter { window: Some((501, 900)), ..Default::default() }.matches(&r));
    }

    #[test]
    fn summarize_and_chrome_have_stable_shape() {
        let mut s = TraceStream::new(true);
        let d = draft(&mut s, 60);
        let e = s.mint(TraceKind::EngineEvent, d, 60, Some(5), Some(2), None, || {
            "dbe".into()
        });
        s.mint_console(e, 60, Some(5), Some(2), None, || "console".into());
        let (h, r) = parse_trace(&s.render_jsonl(3, 30)).unwrap();
        let table = summarize_trace(&h, &r);
        assert!(table.contains("fault_draft"));
        assert!(table.contains("busiest cards"));
        let chrome = chrome_trace(&r);
        assert!(chrome.starts_with("{\"displayTimeUnit\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        // One flow pair per parented record (2 of 3 records here).
        assert_eq!(chrome.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(chrome.matches("\"ph\":\"f\"").count(), 2);
        // ts is µs: 60 sim seconds = 60,000,000.
        assert!(chrome.contains("\"ts\":60000000"));
        // Byte-stable.
        assert_eq!(chrome, chrome_trace(&r));
    }
}
