//! The stable JSON metrics document.
//!
//! One [`MetricsDoc`] is the on-disk contract for `--metrics FILE`:
//! section maps are `BTreeMap`s (sorted, so serialization order never
//! depends on registration order), every value is an exact `u64`, and
//! the schema string is bumped on any breaking change. Because nothing
//! in here is wall-clock-derived, the document is byte-identical for a
//! fixed seed at any thread width — `titan-runner` relies on that to
//! aggregate per-seed metric bands.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::series::TsSeries;
use crate::trace::TraceRing;
use crate::Obs;

/// Current schema identifier written into every document. `/2` added
/// the `timeseries` section (fixed sim-time buckets of a curated
/// counter subset) on top of `/1`.
pub const SCHEMA: &str = "titan-obs/2";

/// Snapshot of one fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// One retained span, with the kind rendered as its stable name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Stable kind name (see [`crate::SpanKind::name`]).
    pub kind: String,
    /// Sim time the span opened.
    pub start: u64,
    /// Sim time the span closed.
    pub end: u64,
    /// Primary identifier.
    pub key: u64,
    /// Secondary payload.
    pub extra: u64,
}

/// Span-ring summary: exact totals plus the retained tail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Ring capacity the run used.
    pub capacity: u64,
    /// Spans ever recorded.
    pub recorded: u64,
    /// Spans evicted once the ring filled.
    pub dropped: u64,
    /// Exact per-kind totals (all kinds present, even at zero).
    pub by_kind: BTreeMap<String, u64>,
    /// The retained spans, oldest first.
    pub recent: Vec<SpanRecord>,
}

impl TraceSummary {
    /// Summarizes a ring.
    pub fn from_ring(ring: &TraceRing) -> Self {
        let mut by_kind = BTreeMap::new();
        for (kind, count) in ring.counts_by_kind() {
            by_kind.insert(kind.name().to_string(), count);
        }
        TraceSummary {
            capacity: ring.capacity() as u64,
            recorded: ring.recorded(),
            dropped: ring.dropped(),
            by_kind,
            recent: ring
                .spans()
                .iter()
                .map(|s| SpanRecord {
                    kind: s.kind.name().to_string(),
                    start: s.start,
                    end: s.end,
                    key: s.key,
                    extra: s.extra,
                })
                .collect(),
        }
    }
}

/// The `timeseries` section: fixed sim-time buckets of the curated
/// counter subset ([`TsSeries::ALL`]). Every series is padded to the
/// same length (`buckets`), covering the whole window, so the buckets
/// of each series sum exactly to the run-end counter of the same name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeriesDoc {
    /// Bucket width in sim seconds (default one week).
    pub bucket_secs: u64,
    /// Bucket count (`ceil(window / bucket_secs)`).
    pub buckets: u64,
    /// Per-series bucket counts, keyed by the shadowed counter name.
    pub series: BTreeMap<String, Vec<u64>>,
}

/// The full metrics document for one simulated window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsDoc {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Seed the window ran with.
    pub seed: u64,
    /// Window length in days.
    pub window_days: u64,
    /// Engine hot-loop counters and gauges.
    pub engine: BTreeMap<String, u64>,
    /// Fault-process counters.
    pub faults: BTreeMap<String, u64>,
    /// SEC pipeline counters (filled at collect time by the runner).
    pub sec: BTreeMap<String, u64>,
    /// nvidia-smi pipeline counters.
    pub nvsmi: BTreeMap<String, u64>,
    /// Fixed-bucket histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span-ring summary.
    pub spans: TraceSummary,
    /// Time-bucketed counter subset (new in `/2`).
    pub timeseries: TimeSeriesDoc,
}

impl MetricsDoc {
    /// Snapshots an [`Obs`] sink into a document. Counters and gauges
    /// are routed by their section name; a metric registered under an
    /// unknown section lands in `engine` under `section.name` so it is
    /// never silently lost.
    pub fn from_obs(obs: &Obs, seed: u64, window_days: u64) -> Self {
        let bucket_secs = obs.ts.bucket_secs();
        let window_secs = window_days * 86_400;
        let n_buckets = window_secs.div_ceil(bucket_secs).max(1);
        let mut series = BTreeMap::new();
        for s in TsSeries::ALL {
            // lint: allow(N1, bucket count: window/bucket_secs is far below 2^32)
            series.insert(s.name().to_string(), obs.ts.padded(s, n_buckets as usize));
        }
        let mut doc = MetricsDoc {
            schema: SCHEMA.to_string(),
            seed,
            window_days,
            engine: BTreeMap::new(),
            faults: BTreeMap::new(),
            sec: BTreeMap::new(),
            nvsmi: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: TraceSummary::from_ring(&obs.trace),
            timeseries: TimeSeriesDoc {
                bucket_secs,
                buckets: n_buckets,
                series,
            },
        };
        let entries = obs
            .reg
            .counters()
            .chain(obs.reg.gauges())
            .map(|(s, n, v)| (s.to_string(), n.to_string(), v))
            .collect::<Vec<_>>();
        for (section, name, value) in entries {
            match section.as_str() {
                "engine" => doc.engine.insert(name, value),
                "faults" => doc.faults.insert(name, value),
                "sec" => doc.sec.insert(name, value),
                "nvsmi" => doc.nvsmi.insert(name, value),
                other => doc.engine.insert(format!("{other}.{name}"), value),
            };
        }
        for (name, bounds, counts, count, sum) in obs.reg.histograms() {
            doc.histograms.insert(
                name.to_string(),
                HistogramSnapshot {
                    bounds: bounds.to_vec(),
                    counts: counts.to_vec(),
                    count,
                    sum,
                },
            );
        }
        doc
    }

    /// Renders the document as pretty JSON (trailing newline included,
    /// matching the repo's other artifacts). Serialization of this
    /// all-owned tree cannot fail; the fallback keeps telemetry from
    /// ever panicking a run.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        s.push('\n');
        s
    }

    /// Flattens every scalar into `section.name -> f64` (plus
    /// histogram `hist.<name>.count/sum` and span totals), the shape
    /// `titan-runner` aggregates into per-seed metric bands.
    pub fn flatten(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for (section, map) in [
            ("engine", &self.engine),
            ("faults", &self.faults),
            ("sec", &self.sec),
            ("nvsmi", &self.nvsmi),
        ] {
            for (name, &v) in map {
                out.insert(format!("{section}.{name}"), v as f64);
            }
        }
        for (name, h) in &self.histograms {
            out.insert(format!("hist.{name}.count"), h.count as f64);
            out.insert(format!("hist.{name}.sum"), h.sum as f64);
        }
        out.insert("spans.recorded".to_string(), self.spans.recorded as f64);
        out.insert("spans.dropped".to_string(), self.spans.dropped as f64);
        for (kind, &count) in &self.spans.by_kind {
            out.insert(format!("spans.{kind}"), count as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Span, SpanKind};

    fn sample_doc() -> MetricsDoc {
        let mut obs = Obs::enabled();
        let cat = obs.cat;
        obs.reg.inc(cat.engine.ev_dbe);
        obs.reg.add(cat.faults.dbe_drafts, 3);
        obs.reg.set_max(cat.engine.heap_high_water, 42);
        obs.reg.observe(cat.faults.cascade_fanout, 2);
        let dyn_c = obs.reg.counter("sec", "rule_hits.alert_each");
        obs.reg.add(dyn_c, 7);
        obs.trace.record(Span {
            kind: SpanKind::HotSpareSwap,
            start: 100,
            end: 200,
            key: 3,
            extra: 9001,
        });
        MetricsDoc::from_obs(&obs, 42, 60)
    }

    #[test]
    fn sections_route_by_name() {
        let doc = sample_doc();
        assert_eq!(doc.schema, SCHEMA);
        assert_eq!(doc.engine.get("ev_dbe"), Some(&1));
        assert_eq!(doc.engine.get("heap_high_water"), Some(&42));
        assert_eq!(doc.faults.get("dbe_drafts"), Some(&3));
        assert_eq!(doc.sec.get("rule_hits.alert_each"), Some(&7));
        let h = doc.histograms.get("cascade_fanout").expect("fanout hist");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 2);
        assert_eq!(doc.spans.recorded, 1);
        assert_eq!(doc.spans.by_kind.get("hot_spare_swap"), Some(&1));
        assert_eq!(doc.spans.by_kind.get("job_lifecycle"), Some(&0));
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let doc = sample_doc();
        let json = doc.to_json();
        assert!(json.ends_with('\n'));
        let back: MetricsDoc = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, doc);
        // Rendering twice is byte-identical.
        assert_eq!(json, doc.to_json());
    }

    #[test]
    fn timeseries_pads_every_series_to_the_window() {
        let mut obs = Obs::enabled();
        obs.ts.inc(crate::TsSeries::EvDbe, 0);
        obs.ts.inc(crate::TsSeries::EvDbe, 8 * 86_400); // second weekly bucket
        let doc = MetricsDoc::from_obs(&obs, 1, 60);
        assert_eq!(doc.schema, "titan-obs/2");
        let ts = &doc.timeseries;
        assert_eq!(ts.bucket_secs, 7 * 86_400);
        // 60 days / 7-day buckets = 9 buckets (ceil).
        assert_eq!(ts.buckets, 9);
        for s in crate::TsSeries::ALL {
            assert_eq!(ts.series[s.name()].len(), 9, "{}", s.name());
        }
        assert_eq!(ts.series["ev_dbe"], vec![1, 1, 0, 0, 0, 0, 0, 0, 0]);
        // Buckets sum to what was counted.
        assert_eq!(ts.series["ev_dbe"].iter().sum::<u64>(), 2);
    }

    /// Satellite pin: `spans.recent` is oldest→newest at the exact
    /// capacity boundary — a full-but-unwrapped ring (capacity spans)
    /// and a just-wrapped one (capacity + 1) both export in record
    /// order with the oldest survivor first.
    #[test]
    fn spans_recent_is_oldest_first_at_capacity_boundaries() {
        let cap = 4usize;
        let starts = |doc: &MetricsDoc| -> Vec<u64> {
            doc.spans.recent.iter().map(|s| s.start).collect()
        };
        // Exactly `capacity` spans: nothing evicted, insertion order.
        let mut obs = Obs::with_span_capacity(true, cap);
        for t in 0..cap as u64 {
            obs.trace.record(Span {
                kind: SpanKind::JobLifecycle,
                start: t,
                end: t,
                key: t,
                extra: 0,
            });
        }
        let doc = MetricsDoc::from_obs(&obs, 0, 1);
        assert_eq!(doc.spans.capacity, cap as u64);
        assert_eq!(doc.spans.dropped, 0);
        assert_eq!(starts(&doc), vec![0, 1, 2, 3]);

        // `capacity + 1` spans: the oldest evicted, order preserved.
        obs.trace.record(Span {
            kind: SpanKind::FaultChain,
            start: 4,
            end: 4,
            key: 4,
            extra: 0,
        });
        let doc = MetricsDoc::from_obs(&obs, 0, 1);
        assert_eq!(doc.spans.dropped, 1);
        assert_eq!(starts(&doc), vec![1, 2, 3, 4]);
        // by_kind totals survive eviction exactly.
        assert_eq!(doc.spans.by_kind["job_lifecycle"], 4);
        assert_eq!(doc.spans.by_kind["fault_chain"], 1);

        // Well past capacity: still oldest-first, still exact totals.
        for t in 5..20u64 {
            obs.trace.record(Span {
                kind: SpanKind::JobLifecycle,
                start: t,
                end: t,
                key: t,
                extra: 0,
            });
        }
        let doc = MetricsDoc::from_obs(&obs, 0, 1);
        assert_eq!(starts(&doc), vec![16, 17, 18, 19]);
        assert_eq!(doc.spans.by_kind["job_lifecycle"], 19);
        assert_eq!(doc.spans.recorded, 20);
    }

    #[test]
    fn flatten_prefixes_sections() {
        let doc = sample_doc();
        let flat = doc.flatten();
        assert_eq!(flat.get("engine.ev_dbe"), Some(&1.0));
        assert_eq!(flat.get("faults.dbe_drafts"), Some(&3.0));
        assert_eq!(flat.get("sec.rule_hits.alert_each"), Some(&7.0));
        assert_eq!(flat.get("hist.cascade_fanout.count"), Some(&1.0));
        assert_eq!(flat.get("spans.hot_spare_swap"), Some(&1.0));
    }
}
