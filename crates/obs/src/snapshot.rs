//! Whole-sink snapshots for checkpoint/restore (`titan-ckpt/1`).
//!
//! A checkpoint must carry the observability state alongside the engine
//! state, or a resumed run's metrics document and trace file would
//! restart from zero and break the byte-identity contract. An
//! [`ObsSnapshot`] is a plain-data copy of everything inside an [`Obs`]
//! sink — counters, gauges, histograms, time-series buckets, the span
//! ring, and the causal flight recorder including its id watermark —
//! addressed *by name*, never by handle index, so restore is immune to
//! registration-order drift.
//!
//! Restore preserves the disabled-sink-is-inert invariant: every
//! underlying `restore_*` call is a no-op when the corresponding sink is
//! off, so resuming a `--metrics`-off run from a checkpoint written by a
//! `--metrics`-on run silently drops the counters instead of reviving
//! them (byte-identity then holds only when the flags match — see
//! DETERMINISM.md).

use serde::{Deserialize, Serialize};

use crate::flight::TraceRecord;
use crate::health::HealthSnap;
use crate::prof::ProfSnap;
use crate::trace::{Span, SpanKind};
use crate::{Obs, TsSeries};

/// One retained span, flattened for serialization ([`Span`] itself
/// carries a [`SpanKind`] enum we keep out of the frozen on-disk
/// schema). `kind` is the index into [`SpanKind::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpanSnap {
    /// Index into [`SpanKind::ALL`].
    pub kind: u8,
    /// Sim time the span opened.
    pub start: u64,
    /// Sim time the span closed.
    pub end: u64,
    /// Primary identifier (job id, card serial, slot, node).
    pub key: u64,
    /// Secondary payload (node count, cause, serial, class).
    pub extra: u64,
}

/// A plain-data copy of one [`Obs`] sink, suitable for embedding in a
/// checkpoint document. Capture with [`ObsSnapshot::capture`], apply
/// with [`ObsSnapshot::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// `(section, name, value)` for every counter, registration order.
    counters: Vec<(String, String, u64)>,
    /// `(section, name, value)` for every gauge, registration order.
    gauges: Vec<(String, String, u64)>,
    /// `(name, bounds, counts, count, sum)` for every histogram.
    hists: Vec<(String, Vec<u64>, Vec<u64>, u64, u64)>,
    /// Raw buckets of every series, in [`TsSeries::ALL`] order.
    timeseries: Vec<Vec<u64>>,
    /// Retained spans, oldest first.
    spans: Vec<SpanSnap>,
    /// Total spans ever recorded (exact, past ring capacity).
    spans_recorded: u64,
    /// Exact per-kind span totals, in [`SpanKind::ALL`] order.
    spans_by_kind: Vec<u64>,
    /// Flight-recorder id watermark (next id to be minted).
    trace_next: u64,
    /// Flight-recorder records minted so far, id order.
    trace_records: Vec<TraceRecord>,
    /// Flight-recorder console `(ts, id)` pairs, emission order.
    trace_console: Vec<(u64, u64)>,
    /// Complete health-sink state (inert on restore when health
    /// collection is off on either side).
    health: HealthSnap,
    /// Deterministic cost-ledger scope table (inert on restore when the
    /// ledger is off on either side). Checkpoints are per-build
    /// artifacts, never long-lived archives, so the field is plain
    /// (the vendored serde_derive supports no `#[serde(default)]`).
    prof: ProfSnap,
}

fn kind_index(k: SpanKind) -> u8 {
    // lint: allow(N1, position over a 4-element array fits u8 trivially)
    SpanKind::ALL.iter().position(|&a| a == k).unwrap_or(0) as u8
}

impl ObsSnapshot {
    /// Copies the full state of `obs` into a serializable snapshot.
    /// Disabled sinks contribute their (empty / zero) state verbatim.
    pub fn capture(obs: &Obs) -> ObsSnapshot {
        let counters = obs
            .reg
            .counters()
            .map(|(s, n, v)| (s.to_string(), n.to_string(), v))
            .collect();
        let gauges = obs
            .reg
            .gauges()
            .map(|(s, n, v)| (s.to_string(), n.to_string(), v))
            .collect();
        let hists = obs
            .reg
            .histograms()
            .map(|(name, bounds, counts, count, sum)| {
                (name.to_string(), bounds.to_vec(), counts.to_vec(), count, sum)
            })
            .collect();
        let timeseries = TsSeries::ALL.iter().map(|&s| obs.ts.series(s).to_vec()).collect();
        let spans = obs
            .trace
            .spans()
            .iter()
            .map(|s| SpanSnap {
                kind: kind_index(s.kind),
                start: s.start,
                end: s.end,
                key: s.key,
                extra: s.extra,
            })
            .collect();
        let spans_by_kind = obs.trace.counts_by_kind().iter().map(|&(_, v)| v).collect();
        ObsSnapshot {
            counters,
            gauges,
            hists,
            timeseries,
            spans,
            spans_recorded: obs.trace.recorded(),
            spans_by_kind,
            trace_next: obs.stream.next_id(),
            trace_records: obs.stream.records().to_vec(),
            trace_console: obs.stream.console_pairs().to_vec(),
            health: obs.health.snap(),
            prof: obs.prof_snap(),
        }
    }

    /// Whether the snapshotted run had health collection on (resume
    /// validates this against the `--health` flag).
    pub fn health_enabled(&self) -> bool {
        self.health.enabled
    }

    /// Whether the snapshotted run had the cost ledger on (resume
    /// validates this against the `--prof` flag).
    pub fn prof_enabled(&self) -> bool {
        self.prof.enabled
    }

    /// Overwrites `obs` with the snapshot's state. Every write goes
    /// through a name-addressed `restore_*` method, so it is safe to
    /// apply to a sink whose registration order differs, and a no-op
    /// for each sub-sink that is disabled on the receiving side.
    pub fn restore(&self, obs: &mut Obs) {
        for (section, name, value) in &self.counters {
            obs.reg.restore_counter(section, name, *value);
        }
        for (section, name, value) in &self.gauges {
            obs.reg.restore_gauge(section, name, *value);
        }
        for (name, bounds, counts, count, sum) in &self.hists {
            obs.reg.restore_histogram(name, bounds, counts, *count, *sum);
        }
        for (&series, buckets) in TsSeries::ALL.iter().zip(self.timeseries.iter()) {
            obs.ts.restore(series, buckets);
        }
        let spans: Vec<Span> = self
            .spans
            .iter()
            .map(|s| Span {
                kind: SpanKind::ALL
                    .get(s.kind as usize)
                    .copied()
                    .unwrap_or(SpanKind::JobLifecycle),
                start: s.start,
                end: s.end,
                key: s.key,
                extra: s.extra,
            })
            .collect();
        let mut by_kind = [0u64; 4];
        for (slot, &v) in by_kind.iter_mut().zip(self.spans_by_kind.iter()) {
            *slot = v;
        }
        obs.trace.restore(&spans, self.spans_recorded, by_kind);
        obs.stream.restore(
            self.trace_next,
            self.trace_records.clone(),
            self.trace_console.clone(),
        );
        obs.health.restore(&self.health);
        obs.prof_restore(&self.prof);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::TraceKind;

    fn populated() -> Obs {
        let mut obs = Obs::enabled();
        obs.enable_trace();
        obs.enable_health();
        obs.health.set_spares_baseline(48);
        obs.health.on_sbe(77, 5, 2);
        obs.health.tick(5);
        let c = obs.cat.engine.ev_dbe;
        obs.reg.add(c, 7);
        obs.reg.set_max(obs.cat.engine.heap_high_water, 41);
        obs.reg.observe(obs.cat.engine.job_nodes, 16);
        obs.ts.inc(TsSeries::EvDbe, 100);
        obs.ts.inc(TsSeries::EvDbe, 100_000_000);
        obs.trace.record(Span {
            kind: SpanKind::FaultChain,
            start: 5,
            end: 9,
            key: 77,
            extra: 1,
        });
        let root = obs
            .stream
            .mint(TraceKind::FaultDraft, 0, 5, Some(77), None, None, || "dbe".to_string());
        obs.stream
            .mint_console(root, 5, Some(77), Some(3), None, || "line".to_string());
        obs.enable_prof();
        obs.phase("engine:workload");
        obs.prof_rng_direct(42);
        obs.prof_heap_push(3);
        obs.prof_finish();
        obs
    }

    #[test]
    fn roundtrip_restores_every_sink() {
        let src = populated();
        let snap = ObsSnapshot::capture(&src);
        let mut dst = Obs::enabled();
        dst.enable_trace();
        dst.enable_health();
        dst.enable_prof();
        snap.restore(&mut dst);
        assert!(snap.health_enabled());
        assert!(snap.prof_enabled());
        assert_eq!(
            dst.prof_ledger().ledger_map()["engine:workload"].rng_draws,
            42
        );
        assert_eq!(dst.health.snap(), src.health.snap());
        assert_eq!(dst.reg.counter_value(dst.cat.engine.ev_dbe), 7);
        assert_eq!(dst.reg.gauge_value(dst.cat.engine.heap_high_water), 41);
        assert_eq!(dst.ts.series(TsSeries::EvDbe), src.ts.series(TsSeries::EvDbe));
        assert_eq!(dst.trace.recorded(), 1);
        assert_eq!(dst.trace.spans(), src.trace.spans());
        assert_eq!(dst.stream.next_id(), src.stream.next_id());
        assert_eq!(dst.stream.records(), src.stream.records());
        assert_eq!(dst.stream.console_pairs(), src.stream.console_pairs());
        // And the re-captured snapshot is identical — capture∘restore is
        // the identity on the observable state.
        assert_eq!(ObsSnapshot::capture(&dst), snap);
    }

    #[test]
    fn restore_into_disabled_sink_is_inert() {
        let snap = ObsSnapshot::capture(&populated());
        let mut dst = Obs::disabled();
        snap.restore(&mut dst);
        assert_eq!(dst.reg.counter_value(dst.cat.engine.ev_dbe), 0);
        assert_eq!(dst.trace.recorded(), 0);
        assert_eq!(dst.stream.next_id(), 1);
        assert!(dst.stream.records().is_empty());
        assert!(!dst.health_enabled());
        assert_eq!(dst.health.snap(), crate::HealthSink::new(false).snap());
    }

    #[test]
    fn snapshot_survives_json_roundtrip() {
        let snap = ObsSnapshot::capture(&populated());
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: ObsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
