//! The metrics registry: monotonic counters, high-water gauges, and
//! fixed-bucket histograms behind `Copy` index handles.
//!
//! Handles are issued at registration time and are plain `u32` indices
//! into dense vectors, so a record call through a disabled registry is
//! one branch on a bool and an enabled one is a bounds-checked add —
//! cheap enough for the engine's per-event hot loop.
//!
//! All values are `u64` counts or sim-time quantities; nothing here may
//! ever hold a wall-clock reading (see crate docs and lint rule D5).

/// Handle to a monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u32);

/// Handle to a high-water gauge (`set_max` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge(u32);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u32);

#[derive(Debug, Clone)]
struct Hist {
    name: String,
    /// Upper bounds (inclusive) of each finite bucket, ascending; one
    /// implicit overflow bucket follows.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

/// Dense metric store. Created once per run; handles from one registry
/// must not be used against another (they are bare indices).
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    counter_meta: Vec<(String, String)>,
    counters: Vec<u64>,
    gauge_meta: Vec<(String, String)>,
    gauges: Vec<u64>,
    hists: Vec<Hist>,
}

impl Registry {
    /// A registry with collection on or off. Registration works either
    /// way (handles must exist so instrumented code is identical on
    /// both paths); only *recording* is gated.
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            counter_meta: Vec::new(),
            counters: Vec::new(),
            gauge_meta: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Whether record calls do anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-uses) a counter under `section.name`. Returns
    /// the existing handle if the pair is already registered, so
    /// collect-time code may re-derive handles by name.
    pub fn counter(&mut self, section: &str, name: &str) -> Counter {
        for (i, (s, n)) in self.counter_meta.iter().enumerate() {
            if s == section && n == name {
                return Counter(i as u32);
            }
        }
        let id = self.counters.len() as u32;
        self.counter_meta.push((section.to_string(), name.to_string()));
        self.counters.push(0);
        Counter(id)
    }

    /// Registers (or re-uses) a high-water gauge under `section.name`.
    pub fn gauge(&mut self, section: &str, name: &str) -> Gauge {
        for (i, (s, n)) in self.gauge_meta.iter().enumerate() {
            if s == section && n == name {
                return Gauge(i as u32);
            }
        }
        let id = self.gauges.len() as u32;
        self.gauge_meta.push((section.to_string(), name.to_string()));
        self.gauges.push(0);
        Gauge(id)
    }

    /// Registers (or re-uses) a fixed-bucket histogram. `bounds` are
    /// ascending inclusive upper bounds; an overflow bucket is implied.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistId {
        for (i, h) in self.hists.iter().enumerate() {
            if h.name == name {
                return HistId(i as u32);
            }
        }
        let id = self.hists.len() as u32;
        self.hists.push(Hist {
            name: name.to_string(),
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        });
        HistId(id)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Increments a counter by `n` (saturating; telemetry must never
    /// panic the engine).
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        if self.enabled {
            if let Some(v) = self.counters.get_mut(c.0 as usize) {
                *v = v.saturating_add(n);
            }
        }
    }

    /// Raises a high-water gauge to `v` if `v` exceeds its current
    /// value.
    #[inline]
    pub fn set_max(&mut self, g: Gauge, v: u64) {
        if self.enabled {
            if let Some(cur) = self.gauges.get_mut(g.0 as usize) {
                if v > *cur {
                    *cur = v;
                }
            }
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, h: HistId, v: u64) {
        if self.enabled {
            if let Some(hist) = self.hists.get_mut(h.0 as usize) {
                let idx = hist
                    .bounds
                    .iter()
                    .position(|&b| v <= b)
                    .unwrap_or(hist.bounds.len());
                if let Some(slot) = hist.counts.get_mut(idx) {
                    *slot += 1;
                }
                hist.count += 1;
                hist.sum = hist.sum.saturating_add(v);
            }
        }
    }

    /// Current value of a counter (0 for a foreign handle).
    pub fn counter_value(&self, c: Counter) -> u64 {
        self.counters.get(c.0 as usize).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, g: Gauge) -> u64 {
        self.gauges.get(g.0 as usize).copied().unwrap_or(0)
    }

    /// Iterates `(section, name, value)` over all counters in
    /// registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counter_meta
            .iter()
            .zip(self.counters.iter())
            .map(|((s, n), &v)| (s.as_str(), n.as_str(), v))
    }

    /// Iterates `(section, name, value)` over all gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.gauge_meta
            .iter()
            .zip(self.gauges.iter())
            .map(|((s, n), &v)| (s.as_str(), n.as_str(), v))
    }

    /// Iterates `(name, bounds, counts, count, sum)` over histograms.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &[u64], &[u64], u64, u64)> {
        self.hists
            .iter()
            .map(|h| (h.name.as_str(), h.bounds.as_slice(), h.counts.as_slice(), h.count, h.sum))
    }

    /// Overwrites `section.name` with `value`, registering it if needed
    /// (checkpoint restore). No-op when disabled, preserving the
    /// disabled-sink-is-inert invariant.
    pub fn restore_counter(&mut self, section: &str, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let c = self.counter(section, name);
        if let Some(v) = self.counters.get_mut(c.0 as usize) {
            *v = value;
        }
    }

    /// Overwrites gauge `section.name` with `value` (checkpoint
    /// restore). No-op when disabled.
    pub fn restore_gauge(&mut self, section: &str, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let g = self.gauge(section, name);
        if let Some(v) = self.gauges.get_mut(g.0 as usize) {
            *v = value;
        }
    }

    /// Overwrites histogram `name` wholesale (checkpoint restore). The
    /// snapshot's bucket layout wins; `counts` is padded/truncated to
    /// `bounds.len() + 1` so a corrupted doc cannot desync the overflow
    /// bucket. No-op when disabled.
    pub fn restore_histogram(
        &mut self,
        name: &str,
        bounds: &[u64],
        counts: &[u64],
        count: u64,
        sum: u64,
    ) {
        if !self.enabled {
            return;
        }
        let h = self.histogram(name, bounds);
        if let Some(hist) = self.hists.get_mut(h.0 as usize) {
            hist.bounds = bounds.to_vec();
            let mut c = counts.to_vec();
            c.resize(bounds.len() + 1, 0);
            hist.counts = c;
            hist.count = count;
            hist.sum = sum;
        }
    }
}

/// Lowercases a human label ("Device Memory") into a stable metric key
/// ("device_memory"): ASCII alphanumerics pass through lowercased,
/// everything else collapses to single underscores.
pub fn metric_key(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_sep = false;
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(ch.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let mut r = Registry::new(true);
        let a = r.counter("engine", "x");
        let b = r.counter("engine", "x");
        assert_eq!(a, b);
        let c = r.counter("faults", "x");
        assert_ne!(a, c);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
    }

    #[test]
    fn gauge_is_high_water() {
        let mut r = Registry::new(true);
        let g = r.gauge("engine", "hw");
        r.set_max(g, 5);
        r.set_max(g, 3);
        r.set_max(g, 9);
        assert_eq!(r.gauge_value(g), 9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut r = Registry::new(true);
        let h = r.histogram("fanout", &[0, 1, 3]);
        for v in [0, 0, 1, 2, 3, 10] {
            r.observe(h, v);
        }
        let (name, bounds, counts, count, sum) =
            r.histograms().next().expect("histogram registered");
        assert_eq!(name, "fanout");
        assert_eq!(bounds, &[0, 1, 3]);
        // <=0: two, <=1: one, <=3: two (2 and 3), overflow: one (10)
        assert_eq!(counts, &[2, 1, 2, 1]);
        assert_eq!(count, 6);
        assert_eq!(sum, 16);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = Registry::new(false);
        let c = r.counter("engine", "x");
        let g = r.gauge("engine", "g");
        let h = r.histogram("h", &[1]);
        r.inc(c);
        r.set_max(g, 7);
        r.observe(h, 1);
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.gauge_value(g), 0);
        let (_, _, counts, count, _) = r.histograms().next().expect("registered");
        assert_eq!(count, 0);
        assert!(counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn metric_key_sanitizes_labels() {
        assert_eq!(metric_key("Device Memory"), "device_memory");
        assert_eq!(metric_key("L2 Cache"), "l2_cache");
        assert_eq!(metric_key("Shared/L1"), "shared_l1");
        assert_eq!(metric_key("  weird -- label "), "weird_label");
    }
}
