//! titan-prof: the deterministic cost ledger (`titan-prof/2`).
//!
//! The paper's method is attribution — every observed failure tied back
//! to a location, class, and cause — and the ROADMAP's raw-speed push
//! needs the same discipline applied to the simulator itself: *which
//! event kind, queue operation, or allocation pays for each event?*
//! This module answers that with a [`ProfLedger`] threaded through the
//! engine hot loop, charging every deterministic cost to a named scope:
//!
//! * **event kinds** (`ev:dbe`, `ev:sbe`, …) — one scope per hot-loop
//!   dispatch arm, switched at each heap pop;
//! * **phases** (`engine:workload`, `cli:collect_metrics`, …) — the
//!   existing [`crate::Obs::phase`] markers, which now double as ledger
//!   scopes for everything outside the loop.
//!
//! Per scope the ledger counts dequeues, heap pushes, console lines and
//! bytes formatted, RNG draws, trace records minted, and — via an
//! injected allocator probe — allocations, allocated bytes, and frees.
//! Determinism comes in tiers. The count columns (dequeues, pushes,
//! console, RNG, trace) are pure simulation arithmetic: byte-identical
//! across thread widths, hosts, *and* `--from-checkpoint` resume. The
//! allocator columns are thread-local counts on the engine thread; lint
//! rule D4 keeps the engine single-threaded, so the *engine* scopes'
//! (`ev:*`, `engine:*`) alloc numbers are a deterministic function of
//! the seed across thread widths — but CLI/study scopes cover
//! rayon-parallel figure work whose inline-vs-worker placement depends
//! on the pool width, so their alloc counters are host-variant
//! ([`ProfDoc::deterministic_json`] zeroes them). And no alloc counter
//! survives resume ([`ProfDoc::invariant_json`] — heap capacity is
//! host-process state a checkpoint does not carry, so a resumed run's
//! realloc pattern differs from the straight run's).
//!
//! ## The wall-clock quarantine (lint D5)
//!
//! The engine never sees a clock. Wall-time attribution works exactly
//! like [`crate::Obs::set_phase_hook`]: the ledger fires a registered
//! hook with the new scope's static name on every scope *change*, and a
//! non-engine caller (the CLI / `titan-bench`) timestamps the edges on
//! its side. The resulting [`WallDoc`] is carried in the **last** field
//! of [`ProfDoc`] and every byte-identity comparison strips it first —
//! no wall-clock value ever enters a digest.
//!
//! ## Delta attribution
//!
//! RNG draws, trace mints, and allocator counts are monotone totals
//! owned elsewhere (the engine's RNGs, [`crate::TraceStream`], the
//! binary's counting allocator). The ledger snapshots each total at
//! every scope switch and charges the delta to the scope being closed.
//! Checkpoint resume restores the scope table from the snapshot and
//! marks a *rebaseline*: the first switch after restore discards the
//! restore-machinery delta and re-reads the watermarks, so a resumed
//! run's ledger continues byte-for-byte where the original left off.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::export::MetricsDoc;

/// Schema identifier written into every profile document. `/2` replaces
/// the retired coarse wall-clock phase table (`titan-profile/1`) with
/// the deterministic per-kind cost ledger.
pub const PROF_SCHEMA: &str = "titan-prof/2";

/// Hot-loop cost scopes: one per dispatch arm plus the horizon drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Job-start events.
    JobStart,
    /// Job-end events.
    JobEnd,
    /// Double-bit-error events.
    Dbe,
    /// Off-the-bus events.
    Otb,
    /// SBE draft events (accepted or thinned).
    Sbe,
    /// Software-XID events.
    Soft,
    /// Cascade-child events.
    Child,
    /// Deferred retirement-record events.
    RetireRecord,
    /// Hot-spare swap events.
    Swap,
    /// Events dropped at the study horizon.
    Horizon,
}

impl CostKind {
    /// All kinds, in dispatch order.
    pub const ALL: [CostKind; 10] = [
        CostKind::JobStart,
        CostKind::JobEnd,
        CostKind::Dbe,
        CostKind::Otb,
        CostKind::Sbe,
        CostKind::Soft,
        CostKind::Child,
        CostKind::RetireRecord,
        CostKind::Swap,
        CostKind::Horizon,
    ];

    /// Stable ledger key; the `ev:` prefix separates event kinds from
    /// phase scopes in the flat scope namespace.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::JobStart => "ev:job_start",
            CostKind::JobEnd => "ev:job_end",
            CostKind::Dbe => "ev:dbe",
            CostKind::Otb => "ev:otb",
            CostKind::Sbe => "ev:sbe",
            CostKind::Soft => "ev:soft",
            CostKind::Child => "ev:child",
            CostKind::RetireRecord => "ev:retire_record",
            CostKind::Swap => "ev:swap",
            CostKind::Horizon => "ev:horizon",
        }
    }

    /// Inverse of [`CostKind::name`].
    pub fn parse(name: &str) -> Option<CostKind> {
        CostKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            CostKind::JobStart => 0,
            CostKind::JobEnd => 1,
            CostKind::Dbe => 2,
            CostKind::Otb => 3,
            CostKind::Sbe => 4,
            CostKind::Soft => 5,
            CostKind::Child => 6,
            CostKind::RetireRecord => 7,
            CostKind::Swap => 8,
            CostKind::Horizon => 9,
        }
    }
}

/// Deterministic cost counters for one scope. Field order is frozen by
/// the `titan-prof-2` golden spec (these structs serialize inside
/// [`ProfDoc`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCost {
    /// Heap pops dispatched to this scope (0 for phase scopes).
    pub dequeues: u64,
    /// Heap pushes performed while this scope was open.
    pub heap_pushes: u64,
    /// Console lines emitted.
    pub console_lines: u64,
    /// Exact rendered bytes of those console lines.
    pub console_bytes: u64,
    /// RNG draws (`next_u64` invocations across every engine stream).
    pub rng_draws: u64,
    /// Flight-recorder records minted.
    pub trace_records: u64,
    /// Heap allocations (counting global allocator; 0 without a probe).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Heap frees.
    pub frees: u64,
}

impl KindCost {
    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &KindCost) {
        self.dequeues += other.dequeues;
        self.heap_pushes += other.heap_pushes;
        self.console_lines += other.console_lines;
        self.console_bytes += other.console_bytes;
        self.rng_draws += other.rng_draws;
        self.trace_records += other.trace_records;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
        self.frees += other.frees;
    }

    /// True when every counter is zero (such scopes stay out of the
    /// exported ledger to keep the document stable across configs).
    pub fn is_zero(&self) -> bool {
        *self == KindCost::default()
    }
}

/// A monotone snapshot of the process allocator, read through the probe
/// installed by the binary (the engine crates forbid `unsafe`, so the
/// counting `GlobalAlloc` lives in the CLI and reaches the ledger as a
/// plain function pointer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations since process start (current thread).
    pub allocs: u64,
    /// Bytes requested since process start.
    pub bytes: u64,
    /// Frees since process start.
    pub frees: u64,
}

/// The open scope a span is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Nothing open: deltas are discarded (pre-engine CLI startup).
    Idle,
    /// An event kind, by [`CostKind::index`].
    Kind(usize),
    /// A phase scope, by index into the phase table.
    Phase(usize),
}

/// The deterministic cost ledger. Disabled ledgers are inert: every
/// record call is one branch, so the uninstrumented hot loop stays
/// within the `bench_pr` prof-overhead gate (≤ 1%).
pub struct ProfLedger {
    enabled: bool,
    kinds: [KindCost; CostKind::ALL.len()],
    /// Phase scopes in first-seen order. Keys are owned strings so a
    /// checkpoint-restored table (which arrives as parsed JSON) can be
    /// re-installed without a `&'static` round trip.
    phases: Vec<(String, KindCost)>,
    current: Scope,
    last_rng: u64,
    last_trace: u64,
    last_alloc: AllocStats,
    /// Set after checkpoint capture/restore: the next switch re-reads
    /// every watermark and discards the machinery delta.
    rebaseline: bool,
    alloc_probe: Option<fn() -> AllocStats>,
    wall_hook: Option<Box<dyn FnMut(&'static str)>>,
}

impl std::fmt::Debug for ProfLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfLedger")
            .field("enabled", &self.enabled)
            .field("current", &self.current)
            .field("phases", &self.phases.len())
            .field("alloc_probe", &self.alloc_probe.is_some())
            .field("wall_hook", &self.wall_hook.is_some())
            .finish()
    }
}

impl ProfLedger {
    /// A ledger with collection on or off.
    pub fn new(enabled: bool) -> Self {
        ProfLedger {
            enabled,
            kinds: [KindCost::default(); CostKind::ALL.len()],
            phases: Vec::new(),
            current: Scope::Idle,
            last_rng: 0,
            last_trace: 0,
            last_alloc: AllocStats::default(),
            rebaseline: false,
            alloc_probe: None,
            wall_hook: None,
        }
    }

    /// Whether the ledger records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Installs the allocator probe (a plain function pointer into the
    /// binary's counting global allocator).
    pub fn set_alloc_probe(&mut self, probe: fn() -> AllocStats) {
        self.alloc_probe = probe.into();
    }

    /// Installs the wall-clock edge hook, fired with the new scope's
    /// static name on every scope *change*. Same D5 bridge shape as
    /// [`crate::Obs::set_phase_hook`]: the ledger reports edges, the
    /// non-engine caller owns the clock.
    pub fn set_wall_hook(&mut self, hook: Box<dyn FnMut(&'static str)>) {
        self.wall_hook = Some(hook);
    }

    /// The RNG watermark from the last switch — phase boundaries outside
    /// the loop reuse it (no engine RNG is in scope there to total).
    pub fn last_rng(&self) -> u64 {
        self.last_rng
    }

    fn scope_slot(&mut self, scope: Scope) -> Option<&mut KindCost> {
        match scope {
            Scope::Idle => None,
            Scope::Kind(i) => self.kinds.get_mut(i),
            Scope::Phase(i) => self.phases.get_mut(i).map(|(_, c)| c),
        }
    }

    /// Closes the open span: charges watermark deltas to the current
    /// scope (or discards them — idle scope or pending rebaseline) and
    /// advances every watermark.
    fn close_span(&mut self, rng_total: u64, trace_total: u64) {
        let alloc = self.alloc_probe.map(|p| p()).unwrap_or_default();
        if self.rebaseline {
            self.rebaseline = false;
        } else {
            let rng = rng_total.wrapping_sub(self.last_rng);
            let trace = trace_total.wrapping_sub(self.last_trace);
            let allocs = alloc.allocs.wrapping_sub(self.last_alloc.allocs);
            let bytes = alloc.bytes.wrapping_sub(self.last_alloc.bytes);
            let frees = alloc.frees.wrapping_sub(self.last_alloc.frees);
            if let Some(slot) = self.scope_slot(self.current) {
                slot.rng_draws += rng;
                slot.trace_records += trace;
                slot.allocs += allocs;
                slot.alloc_bytes += bytes;
                slot.frees += frees;
            }
        }
        self.last_rng = rng_total;
        self.last_trace = trace_total;
        self.last_alloc = alloc;
    }

    /// Switches to an event-kind scope at a heap pop. Consecutive pops
    /// of the same kind skip the switch entirely (the open span keeps
    /// accumulating), so a run of SBE drafts costs one compare and one
    /// increment per event.
    #[inline]
    pub fn switch_kind(&mut self, kind: CostKind, rng_total: u64, trace_total: u64) {
        if !self.enabled {
            return;
        }
        let idx = kind.index();
        if self.current == Scope::Kind(idx) && !self.rebaseline {
            // lint: allow(P2, kind.index() < ALL.len() == kinds.len() by construction)
            self.kinds[idx].dequeues += 1;
            return;
        }
        self.close_span(rng_total, trace_total);
        self.current = Scope::Kind(idx);
        // lint: allow(P2, kind.index() < ALL.len() == kinds.len() by construction)
        self.kinds[idx].dequeues += 1;
        if let Some(hook) = &mut self.wall_hook {
            hook(kind.name());
        }
    }

    /// Switches to a phase scope (called from [`crate::Obs::phase`]).
    pub fn switch_phase(&mut self, name: &'static str, rng_total: u64, trace_total: u64) {
        if !self.enabled {
            return;
        }
        self.close_span(rng_total, trace_total);
        let idx = match self.phases.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.phases.push((name.to_string(), KindCost::default()));
                self.phases.len() - 1
            }
        };
        self.current = Scope::Phase(idx);
        if let Some(hook) = &mut self.wall_hook {
            hook(name);
        }
    }

    /// Closes the open span in place without changing scope — the engine
    /// calls this at the end of every `run_until` slice with the true
    /// loop-RNG totals, so a checkpoint captured at the boundary carries
    /// a fully attributed table.
    pub fn flush(&mut self, rng_total: u64, trace_total: u64) {
        if !self.enabled {
            return;
        }
        self.close_span(rng_total, trace_total);
    }

    /// Marks a rebaseline: the next switch discards its delta and
    /// re-reads every watermark. Called after checkpoint capture (the
    /// serialization machinery's allocations must not leak into the
    /// next scope) and by [`ProfLedger::restore`].
    pub fn mark_rebaseline(&mut self) {
        if self.enabled {
            self.rebaseline = true;
        }
    }

    /// Charges `n` heap pushes to the open scope.
    #[inline]
    pub fn heap_push(&mut self, n: u64) {
        if !self.enabled {
            return;
        }
        let scope = self.current;
        if let Some(slot) = self.scope_slot(scope) {
            slot.heap_pushes += n;
        }
    }

    /// Charges one console line of `bytes` rendered bytes.
    #[inline]
    pub fn console(&mut self, bytes: u64) {
        if !self.enabled {
            return;
        }
        let scope = self.current;
        if let Some(slot) = self.scope_slot(scope) {
            slot.console_lines += 1;
            slot.console_bytes += bytes;
        }
    }

    /// Charges `draws` RNG draws directly — used for the setup streams
    /// (workload, fault drafts, susceptibility, apruns), whose local
    /// generators never reach a switch boundary.
    #[inline]
    pub fn rng_direct(&mut self, draws: u64) {
        if !self.enabled {
            return;
        }
        let scope = self.current;
        if let Some(slot) = self.scope_slot(scope) {
            slot.rng_draws += draws;
        }
    }

    /// The deterministic ledger as a sorted map: every event kind with
    /// nonzero cost plus every phase scope seen.
    pub fn ledger_map(&self) -> BTreeMap<String, KindCost> {
        let mut out = BTreeMap::new();
        for kind in CostKind::ALL {
            // lint: allow(P2, kind.index() < ALL.len() == kinds.len() by construction)
            let cost = self.kinds[kind.index()];
            if !cost.is_zero() {
                out.insert(kind.name().to_string(), cost);
            }
        }
        for (name, cost) in &self.phases {
            if !cost.is_zero() {
                out.insert(name.clone(), *cost);
            }
        }
        out
    }

    /// Sum over every scope.
    pub fn totals(&self) -> KindCost {
        let mut total = KindCost::default();
        for cost in &self.kinds {
            total.add(cost);
        }
        for (_, cost) in &self.phases {
            total.add(cost);
        }
        total
    }

    /// Plain-data copy for the checkpoint ride-along.
    pub fn snap(&self) -> ProfSnap {
        let mut scopes = Vec::new();
        for kind in CostKind::ALL {
            // lint: allow(P2, kind.index() < ALL.len() == kinds.len() by construction)
            let cost = self.kinds[kind.index()];
            if !cost.is_zero() {
                scopes.push((kind.name().to_string(), cost));
            }
        }
        for (name, cost) in &self.phases {
            scopes.push((name.clone(), *cost));
        }
        ProfSnap {
            enabled: self.enabled,
            scopes,
        }
    }

    /// Overwrites the scope table from a checkpoint and marks a
    /// rebaseline. Inert when either side has the ledger off, matching
    /// the disabled-sink-is-inert invariant of every other sub-sink.
    pub fn restore(&mut self, snap: &ProfSnap) {
        if !self.enabled || !snap.enabled {
            return;
        }
        self.kinds = [KindCost::default(); CostKind::ALL.len()];
        self.phases.clear();
        for (name, cost) in &snap.scopes {
            match CostKind::parse(name) {
                // lint: allow(P2, kind.index() < ALL.len() == kinds.len() by construction)
                Some(kind) => self.kinds[kind.index()] = *cost,
                None => self.phases.push((name.clone(), *cost)),
            }
        }
        self.current = Scope::Idle;
        self.rebaseline = true;
    }
}

/// The prof ledger's slice of an [`crate::ObsSnapshot`]: scope table in
/// kind-then-phase order. Defaults keep checkpoints written before the
/// ledger existed parseable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfSnap {
    /// Whether the captured run had the ledger on (resume validates
    /// this against `--prof`, like the health flag).
    pub enabled: bool,
    /// `(scope name, cost)` rows, kinds first, phases in seen order.
    pub scopes: Vec<(String, KindCost)>,
}

/// One wall-clock row of [`WallDoc`] (quarantined — see module docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallScope {
    /// Scope name (an `ev:` kind or a phase marker).
    pub name: String,
    /// Total wall time attributed to the scope, milliseconds.
    pub wall_ms: f64,
    /// Scope-entry edges observed (contiguous same-kind runs count 1).
    pub switches: u64,
}

/// The wall-clock section of a [`ProfDoc`] — host-dependent by nature,
/// carried **last** in the document and stripped before every
/// byte-identity comparison. Built outside the engine (lint D5) from
/// the edge hook; an engine-only consumer may ignore it entirely.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallDoc {
    /// Wall time from ledger arm to document build, milliseconds.
    pub total_ms: f64,
    /// Wall time inside named scopes, milliseconds.
    pub attributed_ms: f64,
    /// `attributed_ms / total_ms`, percent (the acceptance bar is 95).
    pub attributed_pct: f64,
    /// Per-scope rows, largest first.
    pub scopes: Vec<WallScope>,
}

/// The frozen `titan-prof/2` document (`profile --json`, `run --prof`).
/// Everything before `wall` is deterministic: byte-identical for a
/// fixed seed across thread widths, hosts, and checkpoint resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfDoc {
    /// Schema identifier ([`PROF_SCHEMA`]).
    pub schema: String,
    /// Seed the window ran with.
    pub seed: u64,
    /// Window length in days.
    pub window_days: u64,
    /// Deterministic per-scope cost rows, sorted by scope name.
    pub ledger: BTreeMap<String, KindCost>,
    /// Sum over every scope.
    pub totals: KindCost,
    /// The run's full metrics document (`titan-obs/2`).
    pub metrics: MetricsDoc,
    /// Host wall-clock attribution — the one non-deterministic section,
    /// last on purpose; strip before comparing documents.
    pub wall: WallDoc,
}

impl ProfDoc {
    /// Assembles a document from a finished run's ledger.
    pub fn build(
        ledger: &ProfLedger,
        seed: u64,
        window_days: u64,
        metrics: MetricsDoc,
        wall: WallDoc,
    ) -> ProfDoc {
        ProfDoc {
            schema: PROF_SCHEMA.to_string(),
            seed,
            window_days,
            ledger: ledger.ledger_map(),
            totals: ledger.totals(),
            metrics,
            wall,
        }
    }

    /// Pretty JSON with trailing newline, like every other artifact.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        s.push('\n');
        s
    }

    /// The deterministic section: the document with the quarantined
    /// `wall` zeroed and the allocator counters of the *non-engine*
    /// scopes zeroed too. Byte-identical for a fixed seed across thread
    /// widths and hosts — this is the form digests and cross-width
    /// comparisons use.
    ///
    /// Engine scopes (`ev:*`, `engine:*`) keep their allocator tallies:
    /// D4 keeps the engine single-threaded, so every engine allocation
    /// lands on the counted thread regardless of pool width. CLI and
    /// study scopes cover figure evaluation that fans out on rayon, and
    /// whether that work runs inline (counted) or on pool workers
    /// (uncounted) depends on the pool width — so their alloc counters
    /// are host-variant, the same class as wall clock.
    pub fn deterministic_json(&self) -> String {
        let mut doc = self.clone();
        doc.wall = WallDoc::default();
        let mut engine_totals = (0u64, 0u64, 0u64);
        for (name, cost) in doc.ledger.iter_mut() {
            if name.starts_with("ev:") || name.starts_with("engine:") {
                engine_totals.0 += cost.allocs;
                engine_totals.1 += cost.alloc_bytes;
                engine_totals.2 += cost.frees;
            } else {
                cost.allocs = 0;
                cost.alloc_bytes = 0;
                cost.frees = 0;
            }
        }
        // Keep the totals row the exact column sum of the rows above.
        doc.totals.allocs = engine_totals.0;
        doc.totals.alloc_bytes = engine_totals.1;
        doc.totals.frees = engine_totals.2;
        doc.to_json()
    }

    /// The resume-invariant section: [`ProfDoc::deterministic_json`]
    /// with the allocator counters additionally zeroed. Allocation
    /// counts are deterministic for a given invocation shape, but *not*
    /// across `--from-checkpoint` resume: heap capacity is host-process
    /// state the checkpoint deliberately does not carry, so restore
    /// rebuilds collections at exact size and the subsequent
    /// growth/realloc pattern legitimately differs from the straight
    /// run's amortized doubling. Everything else — dequeues, pushes,
    /// console, RNG, trace — is machine-state arithmetic and survives
    /// resume byte for byte.
    pub fn invariant_json(&self) -> String {
        let mut doc = self.clone();
        doc.wall = WallDoc::default();
        let strip = |c: &mut KindCost| {
            c.allocs = 0;
            c.alloc_bytes = 0;
            c.frees = 0;
        };
        for cost in doc.ledger.values_mut() {
            strip(cost);
        }
        strip(&mut doc.totals);
        doc.to_json()
    }

    /// Collapsed-stack flamegraph lines (`inferno` / `flamegraph.pl`
    /// input): one `titan;<group>;<scope> <µs>` line per wall scope,
    /// event kinds nested under `engine:event_loop`. Wall-derived, so
    /// quarantined with [`WallDoc`].
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for scope in &self.wall.scopes {
            // lint: allow(N1, rounded non-negative ms→µs fits u64 for any real run)
            let us = (scope.wall_ms * 1000.0).round().max(0.0) as u64;
            if scope.name.starts_with("ev:") {
                out.push_str(&format!("titan;engine:event_loop;{} {us}\n", scope.name));
            } else {
                out.push_str(&format!("titan;{} {us}\n", scope.name));
            }
        }
        out
    }

    /// Perfetto / Chrome counter tracks from the deterministic
    /// `timeseries` section: one `"ph": "C"` event per sim-time bucket
    /// per series, sim-µs timestamps. Contains no wall-clock values, so
    /// the output is byte-identical for a fixed seed.
    pub fn perfetto_counters(&self) -> String {
        let ts = &self.metrics.timeseries;
        let mut out = String::from("[");
        let mut first = true;
        for (name, buckets) in &ts.series {
            for (i, &v) in buckets.iter().enumerate() {
                if !first {
                    out.push(',');
                }
                first = false;
                // Sim seconds → trace µs; bucket start marks the sample.
                // lint: allow(N1, bucket index: usize to u64 is lossless on 64-bit targets)
                let t = (i as u64) * ts.bucket_secs * 1_000_000;
                out.push_str(&format!(
                    "\n{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{t},\"pid\":1,\
                     \"args\":{{\"value\":{v}}}}}"
                ));
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn kind_names_round_trip() {
        for kind in CostKind::ALL {
            assert_eq!(CostKind::parse(kind.name()), Some(kind));
            assert!(kind.name().starts_with("ev:"));
        }
        assert_eq!(CostKind::parse("engine:event_loop"), None);
    }

    #[test]
    fn disabled_ledger_is_inert() {
        let mut l = ProfLedger::new(false);
        l.switch_kind(CostKind::Dbe, 10, 10);
        l.heap_push(3);
        l.console(40);
        l.rng_direct(5);
        l.flush(20, 20);
        assert!(l.ledger_map().is_empty());
        assert!(l.totals().is_zero());
    }

    #[test]
    fn deltas_charge_the_closed_scope() {
        let mut l = ProfLedger::new(true);
        l.switch_phase("engine:workload", 0, 0);
        l.rng_direct(100);
        l.heap_push(7);
        // First pop: closes the workload span (no loop draws yet).
        l.switch_kind(CostKind::Sbe, 0, 0);
        // Same-kind pops accumulate without switching.
        l.switch_kind(CostKind::Sbe, 0, 0);
        l.switch_kind(CostKind::Sbe, 0, 0);
        l.console(40);
        l.console(42);
        // Kind change: the SBE span closes with 5 draws and 2 mints.
        l.switch_kind(CostKind::Dbe, 5, 2);
        l.heap_push(1);
        // Tail flush with the final totals.
        l.flush(9, 3);

        let map = l.ledger_map();
        let wl = &map["engine:workload"];
        assert_eq!(wl.rng_draws, 100);
        assert_eq!(wl.heap_pushes, 7);
        assert_eq!(wl.dequeues, 0);
        let sbe = &map["ev:sbe"];
        assert_eq!(sbe.dequeues, 3);
        assert_eq!(sbe.rng_draws, 5);
        assert_eq!(sbe.trace_records, 2);
        assert_eq!(sbe.console_lines, 2);
        assert_eq!(sbe.console_bytes, 82);
        let dbe = &map["ev:dbe"];
        assert_eq!(dbe.dequeues, 1);
        assert_eq!(dbe.rng_draws, 4);
        assert_eq!(dbe.trace_records, 1);
        assert_eq!(dbe.heap_pushes, 1);
        assert_eq!(l.totals().dequeues, 4);
        assert_eq!(l.totals().rng_draws, 109);
    }

    #[test]
    fn idle_deltas_are_discarded() {
        let mut l = ProfLedger::new(true);
        // Draws before the first scope (CLI startup) charge nothing.
        l.switch_kind(CostKind::Sbe, 50, 5);
        l.flush(50, 5);
        let map = l.ledger_map();
        assert_eq!(map["ev:sbe"].rng_draws, 0);
        assert_eq!(map["ev:sbe"].trace_records, 0);
        assert_eq!(map["ev:sbe"].dequeues, 1);
    }

    #[test]
    fn rebaseline_discards_the_machinery_delta() {
        let mut l = ProfLedger::new(true);
        l.switch_kind(CostKind::Sbe, 0, 0);
        l.flush(10, 1);
        assert_eq!(l.ledger_map()["ev:sbe"].rng_draws, 10);
        // Checkpoint capture happens here; its costs must vanish.
        l.mark_rebaseline();
        l.switch_kind(CostKind::Dbe, 999, 99);
        l.flush(1004, 101);
        let map = l.ledger_map();
        assert_eq!(map["ev:sbe"].rng_draws, 10);
        assert_eq!(map["ev:dbe"].rng_draws, 5);
        assert_eq!(map["ev:dbe"].trace_records, 2);
    }

    #[test]
    fn snap_restore_round_trips_and_rebaselines() {
        let mut l = ProfLedger::new(true);
        l.switch_phase("engine:workload", 0, 0);
        l.rng_direct(11);
        l.switch_kind(CostKind::Swap, 0, 0);
        l.flush(3, 1);
        let snap = l.snap();
        assert!(snap.enabled);

        let mut r = ProfLedger::new(true);
        // Pollute with restore-machinery history, as a real resume does.
        r.switch_phase("engine:workload", 0, 0);
        r.rng_direct(999_999);
        r.restore(&snap);
        // The table is the checkpoint's, wholesale.
        assert_eq!(r.ledger_map(), l.ledger_map());
        // And the first post-restore switch discards its delta.
        r.switch_kind(CostKind::Sbe, 77, 7);
        r.flush(80, 8);
        assert_eq!(r.ledger_map()["ev:sbe"].rng_draws, 3);

        // Restoring into a disabled ledger is inert.
        let mut off = ProfLedger::new(false);
        off.restore(&snap);
        assert!(off.ledger_map().is_empty());
    }

    #[test]
    fn alloc_probe_deltas_attribute_per_scope() {
        fn fake_probe() -> AllocStats {
            AllocStats {
                allocs: 10,
                bytes: 640,
                frees: 4,
            }
        }
        let mut l = ProfLedger::new(true);
        l.set_alloc_probe(fake_probe);
        l.switch_kind(CostKind::Dbe, 0, 0);
        // Probe is constant, so the first close baselines and later
        // deltas are zero — the shape of a quiet allocator.
        l.flush(0, 0);
        assert_eq!(l.ledger_map()["ev:dbe"].allocs, 0);
        assert_eq!(l.ledger_map()["ev:dbe"].alloc_bytes, 0);
    }

    #[test]
    fn wall_hook_fires_on_scope_changes_only() {
        let edges = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = edges.clone();
        let mut l = ProfLedger::new(true);
        l.set_wall_hook(Box::new(move |name| sink.borrow_mut().push(name)));
        l.switch_phase("engine:event_loop", 0, 0);
        l.switch_kind(CostKind::Sbe, 0, 0);
        l.switch_kind(CostKind::Sbe, 0, 0); // same kind: no edge
        l.switch_kind(CostKind::Dbe, 0, 0);
        assert_eq!(*edges.borrow(), vec!["engine:event_loop", "ev:sbe", "ev:dbe"]);
    }

    #[test]
    fn prof_doc_strips_cleanly_and_renders_stably() {
        let mut l = ProfLedger::new(true);
        l.switch_kind(CostKind::Sbe, 0, 0);
        l.flush(4, 2);
        let obs = Obs::enabled();
        let metrics = MetricsDoc::from_obs(&obs, 7, 30);
        let wall = WallDoc {
            total_ms: 12.5,
            attributed_ms: 12.0,
            attributed_pct: 96.0,
            scopes: vec![WallScope {
                name: "ev:sbe".to_string(),
                wall_ms: 12.0,
                switches: 1,
            }],
        };
        let doc = ProfDoc::build(&l, 7, 30, metrics, wall);
        assert_eq!(doc.schema, PROF_SCHEMA);
        let json = doc.to_json();
        assert_eq!(json, doc.to_json());
        let back: ProfDoc = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, doc);
        // `wall` is the last top-level key: everything before it is the
        // deterministic section.
        let wall_pos = json.find("\"wall\"").expect("wall key");
        let ledger_pos = json.find("\"ledger\"").expect("ledger key");
        let metrics_pos = json.find("\"metrics\"").expect("metrics key");
        assert!(ledger_pos < metrics_pos && metrics_pos < wall_pos);
        // Flamegraph output derives from wall only; counter tracks from
        // the deterministic timeseries only.
        let folded = doc.collapsed_stacks();
        assert_eq!(folded, "titan;engine:event_loop;ev:sbe 12000\n");
        let perfetto = doc.perfetto_counters();
        assert!(perfetto.contains("\"ph\":\"C\""));
        assert!(perfetto.trim_end().ends_with(']'));
        // The comparison tiers: deterministic strips wall and the
        // host-variant CLI-scope alloc counters (engine scopes keep
        // theirs), the resume-invariant form zeroes every alloc column.
        let mut alloc_doc = doc.clone();
        alloc_doc.ledger.get_mut("ev:sbe").expect("sbe row").allocs = 9;
        let mut cli_cost = KindCost::default();
        cli_cost.allocs = 5;
        cli_cost.dequeues = 3;
        alloc_doc.ledger.insert("cli:collect_metrics".to_string(), cli_cost);
        let det = alloc_doc.deterministic_json();
        assert!(!det.contains("12.5"), "wall leaked into the deterministic tier");
        assert!(det.contains("\"allocs\": 9"), "engine alloc counters must survive");
        assert!(!det.contains("\"allocs\": 5"), "CLI alloc counters leaked");
        assert!(det.contains("\"dequeues\": 3"), "CLI count columns must survive");
        let back: ProfDoc = serde_json::from_str(&det).expect("det parse");
        assert_eq!(back.totals.allocs, 9, "totals must re-sum the kept rows");
        let inv = alloc_doc.invariant_json();
        assert!(!inv.contains("\"allocs\": 9"), "alloc counters leaked into the invariant tier");
    }
}
