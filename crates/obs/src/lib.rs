//! # titan-obs
//!
//! The fleet simulator's own observability layer — the paper's whole
//! methodology is telemetry (SEC-filtered console logs plus nvidia-smi
//! snapshots), and this crate gives the *simulator* the same courtesy:
//! counters, gauges, histograms, and structured spans describing what
//! the engine did, exported as one stable JSON document.
//!
//! ## Time-domain rule (the determinism contract)
//!
//! Everything recorded here lives in the **simulation time domain**
//! ([`titan_conlog::time::SimTime`]) or is a pure count of simulation
//! work. No wall-clock value may ever enter the registry or the trace
//! ring: recorded telemetry must be byte-identical for a fixed seed
//! across thread widths, hosts, and reruns. Wall-clock profiling lives
//! strictly in `titan-runner`, `titan-bench`, and the CLI — titan-lint
//! rule D5 enforces this mechanically for every engine crate, this one
//! included. The only wall-clock bridge is the [`Obs::set_phase_hook`]
//! callback: the engine reports *phase boundaries* (pure `&'static str`
//! markers) and a non-engine caller may timestamp them on its side.
//!
//! ## Cost model
//!
//! Handles ([`Counter`], [`Gauge`], [`HistId`]) are `Copy` indices;
//! recording through a disabled registry is a single branch on a bool,
//! so the instrumented engine with metrics off stays within noise of
//! the uninstrumented one (the CI overhead gate in `bench_pr2` holds
//! even the *enabled* path to < 5% on the quick window).
//!
//! See `OBSERVABILITY.md` at the workspace root for the metric catalog,
//! the span taxonomy, and how to add a metric without breaking
//! determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod health;
pub mod metrics;
pub mod prof;
pub mod series;
pub mod snapshot;
pub mod trace;

pub use export::{HistogramSnapshot, MetricsDoc, SpanRecord, TimeSeriesDoc, TraceSummary, SCHEMA};
pub use flight::{
    chrome_trace, parse_trace, summarize_trace, verify_trace, TraceFilter, TraceHeader,
    TraceKind, TraceRecord, TraceStream, VerifyReport, TRACE_SCHEMA,
};
pub use health::{
    olcf_default_rules, parse_health, rules_from_json, rules_to_json, summarize_health,
    verify_health_alerts, watch_health, HealthAlert, HealthDoc, HealthEvent, HealthHeader,
    HealthInterval, HealthRec, HealthRule, HealthSink, HealthSnap, HealthSummary,
    DEFAULT_HEALTH_INTERVAL_SECS, HEALTH_SCHEMA,
};
pub use metrics::{metric_key, Counter, Gauge, HistId, Registry};
pub use prof::{
    AllocStats, CostKind, KindCost, ProfDoc, ProfLedger, ProfSnap, WallDoc, WallScope,
    PROF_SCHEMA,
};
pub use series::{TimeBuckets, TsSeries, DEFAULT_BUCKET_SECS};
pub use snapshot::ObsSnapshot;
pub use trace::{Span, SpanKind, TraceRing};

/// Default span-ring capacity: enough to hold every interesting span of
/// a quick window and the tail of a full one.
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

/// Pre-registered handles for the engine hot loop ("engine" section).
#[derive(Debug, Clone, Copy)]
pub struct EngineCat {
    /// Every event dequeued from the heap (includes past-horizon drops).
    pub events_dequeued: Counter,
    /// Events dropped at the study horizon.
    pub events_past_horizon: Counter,
    /// Job-start events executed.
    pub ev_job_start: Counter,
    /// Job-end events executed.
    pub ev_job_end: Counter,
    /// DBE events executed.
    pub ev_dbe: Counter,
    /// Off-the-bus events executed.
    pub ev_otb: Counter,
    /// SBE draft events executed (before activity thinning).
    pub ev_sbe: Counter,
    /// Software XID events executed.
    pub ev_soft: Counter,
    /// Cascade-child events executed.
    pub ev_child: Counter,
    /// Deferred retirement-record events executed.
    pub ev_retire_record: Counter,
    /// Hot-spare swap events executed.
    pub ev_swap: Counter,
    /// Console lines emitted.
    pub console_lines: Counter,
    /// SBE drafts accepted after activity thinning.
    pub sbe_accepted: Counter,
    /// SBE drafts rejected by activity thinning.
    pub sbe_thinned: Counter,
    /// Software incidents that found no running job to strike.
    pub soft_no_target: Counter,
    /// Swaps that fired (card actually pulled).
    pub swaps_fired: Counter,
    /// Swap schedules rejected at fire time (stale / pool drained).
    pub swaps_stale: Counter,
    /// Jobs still running at the horizon, closed after the loop.
    pub jobs_closed_at_horizon: Counter,
    /// Pre-SBE snapshot buffers recycled from the spare pool.
    pub pre_sbe_reuse_hits: Counter,
    /// Pre-SBE snapshot buffers freshly allocated.
    pub pre_sbe_allocs: Counter,
    /// Event-heap depth high-water mark.
    pub heap_high_water: Gauge,
    /// Concurrent running-job high-water mark.
    pub active_jobs_high_water: Gauge,
    /// Final payload-arena length (total events ever scheduled).
    pub payload_slots: Gauge,
    /// Nodes-per-started-job distribution.
    pub job_nodes: HistId,
}

/// Pre-registered handles for fault-process consumption ("faults").
#[derive(Debug, Clone, Copy)]
pub struct FaultsCat {
    /// DBE drafts sampled inside the window.
    pub dbe_drafts: Counter,
    /// DBE drafts striking device memory.
    pub dbe_device_memory: Counter,
    /// DBE drafts striking the register file.
    pub dbe_register_file: Counter,
    /// DBE drafts whose InfoROM write is lost (Observation 2 path).
    pub dbe_inforom_lost: Counter,
    /// Off-the-bus drafts sampled inside the window.
    pub otb_drafts: Counter,
    /// OTB drafts that seeded a cluster.
    pub otb_cluster_roots: Counter,
    /// OTB drafts that are cluster children.
    pub otb_cluster_children: Counter,
    /// SBE drafts sampled inside the window (per-structure counters are
    /// registered dynamically from the draft mix).
    pub sbe_drafts: Counter,
    /// Software XID incidents sampled inside the window.
    pub soft_incidents: Counter,
    /// Job-wide software incidents.
    pub soft_job_wide: Counter,
    /// Parent events offered to the cascade model.
    pub cascade_parents: Counter,
    /// Cascade children scheduled.
    pub cascade_children: Counter,
    /// Children-per-parent fan-out distribution.
    pub cascade_fanout: HistId,
}

/// Pre-registered handles for the nvidia-smi pipeline ("nvsmi").
#[derive(Debug, Clone, Copy)]
pub struct NvsmiCat {
    /// Per-node counter reads at job start (the prologue).
    pub prologue_reads: Counter,
    /// Per-node counter reads at job end (the epilogue).
    pub epilogue_reads: Counter,
    /// End-of-study fleet snapshots taken.
    pub final_snapshots: Counter,
}

/// The full pre-registered handle catalog. `Copy`, so call sites can
/// lift it out of [`Obs`] before mutably borrowing the registry.
#[derive(Debug, Clone, Copy)]
pub struct Catalog {
    /// Engine hot-loop handles.
    pub engine: EngineCat,
    /// Fault-process handles.
    pub faults: FaultsCat,
    /// nvidia-smi pipeline handles.
    pub nvsmi: NvsmiCat,
}

/// Bucket bounds for the nodes-per-job histogram.
const JOB_NODES_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 64, 256, 1024, 4096];

/// Bucket bounds for the cascade fan-out histogram.
const CASCADE_FANOUT_BOUNDS: &[u64] = &[0, 1, 2, 3, 5, 8];

/// The observability sink threaded through a simulation run: metrics
/// registry + span ring + optional phase hook.
pub struct Obs {
    /// The metrics registry (standard catalog pre-registered).
    pub reg: Registry,
    /// The bounded span ring.
    pub trace: TraceRing,
    /// The causal flight recorder (off by default; see
    /// [`Obs::enable_trace`]).
    pub stream: TraceStream,
    /// Fixed sim-time bucket counters for the `timeseries` document
    /// section (enabled together with the registry).
    pub ts: TimeBuckets,
    /// The online reliability-analytics sink (off by default; see
    /// [`Obs::enable_health`]).
    pub health: HealthSink,
    /// Pre-registered handles for the standard catalog.
    pub cat: Catalog,
    phase_hook: Option<Box<dyn FnMut(&'static str)>>,
    /// The deterministic cost ledger (off by default; see
    /// [`Obs::enable_prof`]). Private: the engine records through the
    /// `prof_*` methods so watermark reads stay in one place.
    prof: prof::ProfLedger,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.reg.enabled())
            .field("trace", &self.trace)
            .field("stream_enabled", &self.stream.is_enabled())
            .field("phase_hook", &self.phase_hook.is_some())
            .finish()
    }
}

impl Obs {
    /// A sink with collection on (`enabled = true`) or off. Disabled
    /// sinks still carry the catalog so the engine code is identical on
    /// both paths; every record call is a cheap no-op.
    pub fn new(enabled: bool) -> Self {
        Obs::with_span_capacity(enabled, DEFAULT_SPAN_CAPACITY)
    }

    /// [`Obs::new`] with an explicit span-ring capacity (the
    /// `--span-capacity` CLI flag). The exported `spans.capacity` field
    /// reflects this value.
    pub fn with_span_capacity(enabled: bool, span_capacity: usize) -> Self {
        let mut reg = Registry::new(enabled);
        let cat = Catalog {
            engine: EngineCat {
                events_dequeued: reg.counter("engine", "events_dequeued"),
                events_past_horizon: reg.counter("engine", "events_past_horizon"),
                ev_job_start: reg.counter("engine", "ev_job_start"),
                ev_job_end: reg.counter("engine", "ev_job_end"),
                ev_dbe: reg.counter("engine", "ev_dbe"),
                ev_otb: reg.counter("engine", "ev_otb"),
                ev_sbe: reg.counter("engine", "ev_sbe"),
                ev_soft: reg.counter("engine", "ev_soft"),
                ev_child: reg.counter("engine", "ev_child"),
                ev_retire_record: reg.counter("engine", "ev_retire_record"),
                ev_swap: reg.counter("engine", "ev_swap"),
                console_lines: reg.counter("engine", "console_lines"),
                sbe_accepted: reg.counter("engine", "sbe_accepted"),
                sbe_thinned: reg.counter("engine", "sbe_thinned"),
                soft_no_target: reg.counter("engine", "soft_no_target"),
                swaps_fired: reg.counter("engine", "swaps_fired"),
                swaps_stale: reg.counter("engine", "swaps_stale"),
                jobs_closed_at_horizon: reg.counter("engine", "jobs_closed_at_horizon"),
                pre_sbe_reuse_hits: reg.counter("engine", "pre_sbe_reuse_hits"),
                pre_sbe_allocs: reg.counter("engine", "pre_sbe_allocs"),
                heap_high_water: reg.gauge("engine", "heap_high_water"),
                active_jobs_high_water: reg.gauge("engine", "active_jobs_high_water"),
                payload_slots: reg.gauge("engine", "payload_slots"),
                job_nodes: reg.histogram("job_nodes", JOB_NODES_BOUNDS),
            },
            faults: FaultsCat {
                dbe_drafts: reg.counter("faults", "dbe_drafts"),
                dbe_device_memory: reg.counter("faults", "dbe_device_memory"),
                dbe_register_file: reg.counter("faults", "dbe_register_file"),
                dbe_inforom_lost: reg.counter("faults", "dbe_inforom_lost"),
                otb_drafts: reg.counter("faults", "otb_drafts"),
                otb_cluster_roots: reg.counter("faults", "otb_cluster_roots"),
                otb_cluster_children: reg.counter("faults", "otb_cluster_children"),
                sbe_drafts: reg.counter("faults", "sbe_drafts"),
                soft_incidents: reg.counter("faults", "soft_incidents"),
                soft_job_wide: reg.counter("faults", "soft_job_wide"),
                cascade_parents: reg.counter("faults", "cascade_parents"),
                cascade_children: reg.counter("faults", "cascade_children"),
                cascade_fanout: reg.histogram("cascade_fanout", CASCADE_FANOUT_BOUNDS),
            },
            nvsmi: NvsmiCat {
                prologue_reads: reg.counter("nvsmi", "prologue_reads"),
                epilogue_reads: reg.counter("nvsmi", "epilogue_reads"),
                final_snapshots: reg.counter("nvsmi", "final_snapshots"),
            },
        };
        Obs {
            reg,
            trace: TraceRing::new(enabled, span_capacity),
            stream: TraceStream::new(false),
            ts: TimeBuckets::new(enabled, series::DEFAULT_BUCKET_SECS),
            health: HealthSink::new(false),
            cat,
            phase_hook: None,
            prof: prof::ProfLedger::new(false),
        }
    }

    /// A no-op sink: the default for plain `Simulator::run()`.
    pub fn disabled() -> Self {
        Obs::new(false)
    }

    /// An enabled sink with default settings.
    pub fn enabled() -> Self {
        Obs::new(true)
    }

    /// Whether metric collection is on.
    pub fn is_enabled(&self) -> bool {
        self.reg.enabled()
    }

    /// Turns the causal flight recorder on (`--trace FILE`). Tracing is
    /// independent of metric collection and is a pure observer either
    /// way: the per-seed digests are identical with it on or off.
    pub fn enable_trace(&mut self) {
        self.stream = TraceStream::new(true);
    }

    /// Whether the flight recorder is on.
    pub fn trace_enabled(&self) -> bool {
        self.stream.is_enabled()
    }

    /// Turns the online health-analytics sink on (`--health FILE`).
    /// Like tracing, independent of metric collection and a pure
    /// observer: per-seed digests are identical with it on or off.
    pub fn enable_health(&mut self) {
        self.health = HealthSink::new(true);
    }

    /// Whether the health sink is on.
    pub fn health_enabled(&self) -> bool {
        self.health.is_enabled()
    }

    /// Installs a phase-boundary callback. The engine calls
    /// [`Obs::phase`] with a static marker when it enters each phase;
    /// a CLI-side hook may timestamp those markers with the wall clock
    /// (the engine itself never sees a clock — lint D5).
    pub fn set_phase_hook(&mut self, hook: Box<dyn FnMut(&'static str)>) {
        self.phase_hook = Some(hook);
    }

    /// Marks a phase boundary: `name` starts now, the previous phase
    /// (if any) ends now. Fires the hook when one is installed, and —
    /// with the cost ledger on — opens a ledger phase scope, so every
    /// existing phase marker doubles as a prof attribution boundary.
    pub fn phase(&mut self, name: &'static str) {
        if self.prof.enabled() {
            // Phase boundaries sit outside the event loop: no engine RNG
            // is in scope, so the carried watermark is exact (the loop
            // flushes its true totals before returning).
            let rng = self.prof.last_rng();
            let trace = self.stream.next_id();
            self.prof.switch_phase(name, rng, trace);
        }
        if let Some(hook) = &mut self.phase_hook {
            hook(name);
        }
    }

    /// Turns the deterministic cost ledger on (`--prof FILE` /
    /// `profile`). Like tracing and health, a pure observer: per-seed
    /// output digests are identical with it on or off.
    pub fn enable_prof(&mut self) {
        self.prof = prof::ProfLedger::new(true);
    }

    /// Whether the cost ledger is on — the engine's one-branch gate
    /// around every prof call site.
    #[inline]
    pub fn prof_enabled(&self) -> bool {
        self.prof.enabled()
    }

    /// Installs the counting-allocator probe (see
    /// [`prof::ProfLedger::set_alloc_probe`]).
    pub fn set_prof_alloc_probe(&mut self, probe: fn() -> prof::AllocStats) {
        self.prof.set_alloc_probe(probe);
    }

    /// Installs the wall-clock edge hook (see
    /// [`prof::ProfLedger::set_wall_hook`]); CLI-side only, like
    /// [`Obs::set_phase_hook`].
    pub fn set_prof_wall_hook(&mut self, hook: Box<dyn FnMut(&'static str)>) {
        self.prof.set_wall_hook(hook);
    }

    /// Switches the ledger to the event kind dispatched at a heap pop.
    /// `rng_total` is the summed draw count of every loop RNG; the
    /// trace watermark is read from the sibling stream here.
    #[inline]
    pub fn prof_event(&mut self, kind: prof::CostKind, rng_total: u64) {
        let trace = self.stream.next_id();
        self.prof.switch_kind(kind, rng_total, trace);
    }

    /// Closes the open ledger span with the true loop-RNG totals — the
    /// engine calls this when a `run_until` slice returns, so captures
    /// at checkpoint boundaries see a fully attributed table.
    pub fn prof_flush(&mut self, rng_total: u64) {
        let trace = self.stream.next_id();
        self.prof.flush(rng_total, trace);
    }

    /// Closes the open ledger span with carried watermarks — for the
    /// CLI after the last post-engine phase, where no engine RNG
    /// exists to total.
    pub fn prof_finish(&mut self) {
        let rng = self.prof.last_rng();
        let trace = self.stream.next_id();
        self.prof.flush(rng, trace);
    }

    /// Marks a ledger rebaseline after checkpoint capture (see
    /// [`prof::ProfLedger::mark_rebaseline`]).
    pub fn prof_rebaseline(&mut self) {
        self.prof.mark_rebaseline();
    }

    /// Charges `n` heap pushes to the open ledger scope.
    #[inline]
    pub fn prof_heap_push(&mut self, n: u64) {
        self.prof.heap_push(n);
    }

    /// Charges one console line of `bytes` rendered bytes.
    #[inline]
    pub fn prof_console(&mut self, bytes: u64) {
        self.prof.console(bytes);
    }

    /// Charges setup-stream RNG draws directly to the open scope.
    #[inline]
    pub fn prof_rng_direct(&mut self, draws: u64) {
        self.prof.rng_direct(draws);
    }

    /// Read access to the ledger (document building).
    pub fn prof_ledger(&self) -> &prof::ProfLedger {
        &self.prof
    }

    /// Plain-data ledger copy for the checkpoint ride-along.
    pub fn prof_snap(&self) -> prof::ProfSnap {
        self.prof.snap()
    }

    /// Restores the ledger from a checkpoint (inert when off on either
    /// side, like every other sub-sink).
    pub fn prof_restore(&mut self, snap: &prof::ProfSnap) {
        self.prof.restore(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut obs = Obs::disabled();
        let c = obs.cat.engine.ev_dbe;
        obs.reg.inc(c);
        obs.reg.set_max(obs.cat.engine.heap_high_water, 999);
        obs.trace.record(Span {
            kind: SpanKind::JobLifecycle,
            start: 0,
            end: 1,
            key: 1,
            extra: 1,
        });
        assert_eq!(obs.reg.counter_value(c), 0);
        assert_eq!(obs.reg.gauge_value(obs.cat.engine.heap_high_water), 0);
        assert_eq!(obs.trace.recorded(), 0);
    }

    #[test]
    fn enabled_sink_counts() {
        let mut obs = Obs::enabled();
        let c = obs.cat.faults.dbe_drafts;
        obs.reg.inc(c);
        obs.reg.add(c, 4);
        assert_eq!(obs.reg.counter_value(c), 5);
        obs.reg.set_max(obs.cat.engine.heap_high_water, 10);
        obs.reg.set_max(obs.cat.engine.heap_high_water, 7);
        assert_eq!(obs.reg.gauge_value(obs.cat.engine.heap_high_water), 10);
    }

    #[test]
    fn span_capacity_is_configurable() {
        let mut obs = Obs::with_span_capacity(true, 2);
        for t in 0..5 {
            obs.trace.record(Span {
                kind: SpanKind::JobLifecycle,
                start: t,
                end: t,
                key: t,
                extra: 0,
            });
        }
        assert_eq!(obs.trace.capacity(), 2);
        assert_eq!(obs.trace.recorded(), 5);
        assert_eq!(obs.trace.spans().len(), 2);
        // The default constructor keeps the documented default.
        assert_eq!(Obs::enabled().trace.capacity(), DEFAULT_SPAN_CAPACITY);
    }

    #[test]
    fn trace_stream_is_off_by_default_and_opt_in() {
        let mut obs = Obs::enabled();
        assert!(!obs.trace_enabled());
        assert_eq!(
            obs.stream
                .mint(TraceKind::FaultDraft, 0, 1, None, None, None, String::new),
            0
        );
        obs.enable_trace();
        assert!(obs.trace_enabled());
        assert_eq!(
            obs.stream
                .mint(TraceKind::FaultDraft, 0, 1, None, None, None, String::new),
            1
        );
    }

    #[test]
    fn health_sink_is_off_by_default_and_opt_in() {
        let mut obs = Obs::enabled();
        assert!(!obs.health_enabled());
        obs.health.on_sbe(1, 5, 0);
        obs.health.finish(100);
        assert_eq!(
            parse_health(&obs.health.render_jsonl(1, 1))
                .expect("parse")
                .header
                .intervals,
            0
        );
        obs.enable_health();
        assert!(obs.health_enabled());
        obs.health.on_sbe(1, 5, 0);
        obs.health.finish(100);
        let doc = parse_health(&obs.health.render_jsonl(1, 1)).expect("parse");
        assert_eq!(doc.header.intervals, 1);
    }

    #[test]
    fn phase_hook_sees_markers_in_order() {
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = seen.clone();
        let mut obs = Obs::disabled(); // hook fires even with metrics off
        obs.set_phase_hook(Box::new(move |name| sink.borrow_mut().push(name)));
        obs.phase("a");
        obs.phase("b");
        assert_eq!(*seen.borrow(), vec!["a", "b"]);
    }
}
