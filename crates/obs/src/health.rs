//! titan-health: online reliability analytics on an absolute sim-time
//! grid.
//!
//! The paper's reliability practice was *operational*: OLCF staff
//! watched rolling failure rates, spatial striping, and repeat-offender
//! cards while Titan ran — the bad-SXM-batch and the resistor striping
//! problem were both caught by eye on live dashboards, not by post-hoc
//! log mining. [`HealthSink`] is that dashboard's data layer: the
//! engine feeds it every console-visible error, accepted SBE,
//! scheduled retirement and hot-spare swap as they happen, and the sink
//! evaluates streaming estimators — rolling MTBF per XID class,
//! cumulative cabinet heat with an incremental per-incident striping
//! score (the online form of `titan_analysis::incident_stripe`),
//! top-offender card shares, retirement pressure and spare depletion —
//! flushing one [`HealthInterval`] record per grid interval plus
//! [`HealthAlert`] records fired by a declarative rule set.
//!
//! Determinism contract (the same one `titan-obs/2` and `titan-trace/1`
//! obey):
//!
//! * **pure observer** — a run with health collection on is
//!   byte-identical to the same run with it off; a disabled sink costs
//!   one branch per hook;
//! * **absolute grid** — interval boundaries are `k · interval_secs`
//!   from sim-time zero and flushing is driven by the engine's monotone
//!   event-loop clock ([`HealthSink::tick`]), never by wall time or by
//!   how `run_until` slices the window, so a checkpointed + resumed run
//!   renders the exact bytes of an uninterrupted one;
//! * **snapshot-complete** — [`HealthSnap`] captures every mutable
//!   field (already-emitted records included) and joins `ObsSnapshot`
//!   inside `titan-ckpt/1` checkpoints.
//!
//! Events are bucketed in feed order on the loop-time grid; console
//! skew can spill a line up to 5 s across a boundary, which is the same
//! small smear a live collector tailing the console would see.
//!
//! Every fired alert carries the `titan-trace` record id of the event
//! that tripped it (0 when the run was not traced), so
//! [`verify_health_alerts`] can walk each alert back to the causing
//! fault draft through a `titan-trace/1` file.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::flight::TraceRecord;

/// Frozen schema identifier of the health doc (S1-guarded).
pub const HEALTH_SCHEMA: &str = "titan-health/1";

/// Default interval grid: weekly, matching the `titan-obs/2` timeseries
/// bucket so the two surfaces line up.
pub const DEFAULT_HEALTH_INTERVAL_SECS: u64 = 7 * 86_400;

/// Rolling-MTBF span: the newest `ROLL_INTERVALS` flushed intervals.
const ROLL_INTERVALS: usize = 4;

/// Titan floor shape (25 rows × 8 columns of cabinets, 3 cages each).
/// Kept as local constants so `titan-obs` stays on its conlog-only
/// layering edge; the engine feeds pre-resolved physical coordinates.
const HEALTH_ROWS: usize = 25;
const HEALTH_COLS: usize = 8;
const HEALTH_CAGES: usize = 3;

/// The striping estimator watches the paper's canonical bursty
/// application error (Xid 13) with the paper's 5 s incident window.
const STRIPE_CLASS: &str = "graphics_engine_exception";
const STRIPE_WINDOW_SECS: u64 = 5;

const TOP_CABINETS: usize = 5;
const TOP_CARDS: usize = 10;

/// u64 → f64 for ratio reporting. Every count here is bounded by the
/// run's event count, far below 2^53, so the conversion is exact.
fn to_f64(n: u64) -> f64 {
    // lint: allow(N1, counts stay far below 2^53 and convert exactly)
    n as f64
}

/// usize → u64 for lengths and scan indices.
fn as_u64(n: usize) -> u64 {
    // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
    n as u64
}

/// u64 → usize for table lookups already bounded by a table length.
fn as_usize(n: u64) -> usize {
    // lint: allow(N1, value is pre-clamped below the table length)
    n as usize
}

/// `num / den` with a 0.0 sentinel for an empty denominator.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        to_f64(num) / to_f64(den)
    }
}

/// One streamed observation, pre-resolved by the engine so the sink
/// needs no topology or GPU-taxonomy dependency.
#[derive(Debug, Clone, Copy)]
pub struct HealthEvent {
    /// Sim time of the observation (console skew included).
    pub t: u64,
    /// Stable class label (`GpuErrorKind::short_name`).
    pub class: &'static str,
    /// Table-1 attribution: counted into the spatial heat grid.
    pub hardware: bool,
    /// Cabinet row (0..25).
    pub row: u8,
    /// Cabinet column (0..8).
    pub col: u8,
    /// Cage within the cabinet (0..3).
    pub cage: u8,
    /// `titan-trace` record id of the observation (0 when untraced).
    pub trace: u64,
}

/// Declarative alert rules. Serialized (serde-derived JSON) into the
/// doc header so every alert stream documents the rule set that
/// produced it; [`rules_from_json`] parses the same shape back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthRule {
    /// `count` events of `class` inside a sliding `window_secs` window.
    /// Re-arms after firing (the window clears).
    Burst {
        /// Watched class label.
        class: String,
        /// Events needed to trip.
        count: u64,
        /// Sliding window width in seconds.
        window_secs: u64,
    },
    /// Rolling MTBF of `class` dropped below `secs` at an interval
    /// flush. Latched: fires once per run.
    MtbfBelow {
        /// Watched class label.
        class: String,
        /// MTBF floor in seconds.
        secs: f64,
    },
    /// The top-10 SBE offender cards hold at least `min_pct` percent of
    /// all accepted SBEs at an interval flush (the paper's bad-batch
    /// signal). Latched.
    OffenderShare {
        /// Share floor in percent.
        min_pct: f64,
    },
    /// The hot-spare pool dropped below `below` cards. Latched.
    SpareDepletion {
        /// Pool floor.
        below: u64,
    },
    /// `count` page retirements scheduled inside `window_secs`.
    /// Re-arms after firing.
    RetirementPressure {
        /// Retirements needed to trip.
        count: u64,
        /// Sliding window width in seconds.
        window_secs: u64,
    },
}

impl HealthRule {
    /// Stable snake_case rule name used in alert records.
    pub fn name(&self) -> &'static str {
        match self {
            HealthRule::Burst { .. } => "burst",
            HealthRule::MtbfBelow { .. } => "mtbf_below",
            HealthRule::OffenderShare { .. } => "offender_share",
            HealthRule::SpareDepletion { .. } => "spare_depletion",
            HealthRule::RetirementPressure { .. } => "retirement_pressure",
        }
    }
}

/// The default OLCF-flavoured rule set: thresholds chosen against the
/// simulated fleet's own baseline rates so only the signals the paper's
/// operators actually acted on trip on a plain 30–60 day window. The
/// steady Xid-13 drizzle runs at roughly one event every 2–3 minutes
/// fleet-wide; a job-wide strike on a big allocation lands hundreds of
/// console lines inside seconds, so the burst rule asks for 200 lines
/// in ten minutes — an alert storm, not the baseline. The offender rule
/// trips when the top-10 cards hold over a fifth of all accepted SBEs
/// (the paper's bad-batch concentration signal; a healthy uniform fleet
/// of ~19k cards sits orders of magnitude below that).
pub fn olcf_default_rules() -> Vec<HealthRule> {
    vec![
        HealthRule::Burst {
            class: STRIPE_CLASS.to_string(),
            count: 200,
            window_secs: 600,
        },
        HealthRule::MtbfBelow {
            class: "dbe".to_string(),
            secs: 100_000.0,
        },
        HealthRule::OffenderShare { min_pct: 20.0 },
        HealthRule::SpareDepletion { below: 64 },
        HealthRule::RetirementPressure {
            count: 50,
            window_secs: 7 * 86_400,
        },
    ]
}

/// Renders a rule set as pretty JSON (the `health rules` CLI surface).
pub fn rules_to_json(rules: &[HealthRule]) -> String {
    let mut s = serde_json::to_string_pretty(&rules.to_vec()).unwrap_or_else(|_| "[]".to_string());
    s.push('\n');
    s
}

/// Parses a rule set rendered by [`rules_to_json`].
pub fn rules_from_json(text: &str) -> Result<Vec<HealthRule>, String> {
    serde_json::from_str(text).map_err(|e| format!("health rules: {e}"))
}

/// First line of a `titan-health/1` JSONL doc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthHeader {
    /// Always [`HEALTH_SCHEMA`].
    pub schema: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Study window in days.
    pub window_days: u64,
    /// Interval grid step in seconds.
    pub interval_secs: u64,
    /// Interval records in the stream.
    pub intervals: u64,
    /// Alert records in the stream.
    pub alerts: u64,
    /// The rule set that produced the alerts.
    pub rules: Vec<HealthRule>,
}

/// One flushed grid interval (S1-frozen field order — see
/// `crates/xtask/schemas/titan-health-1.toml`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthInterval {
    /// Record discriminator, always `"interval"`.
    pub rec: String,
    /// Interval index on the grid, from 0.
    pub index: u64,
    /// Inclusive interval start (sim seconds).
    pub t_lo: u64,
    /// Exclusive interval end; the run horizon for the final partial.
    pub t_hi: u64,
    /// Events per class fed during this interval (every class ever seen
    /// is listed, zeros included).
    pub counts: BTreeMap<String, u64>,
    /// Rolling MTBF per class in seconds over the newest ≤4 intervals;
    /// 0.0 means no events in the rolling span.
    pub mtbf: BTreeMap<String, f64>,
    /// Cumulative hardware-event heat, 25×8 cabinets row-major.
    pub heat_cells: Vec<u64>,
    /// Cumulative hardware-event heat per cage (bottom, middle, top).
    pub heat_cages: Vec<u64>,
    /// Top-5 hottest cabinets as `(count, row, col)`, count-descending.
    pub hot_cabinets: Vec<(u64, u64, u64)>,
    /// Event-weighted per-incident column contrast of the stripe class
    /// (cumulative; the online `incident_stripe`).
    pub stripe_contrast: f64,
    /// Size-matched uniform null for the same incidents.
    pub stripe_null: f64,
    /// Closed stripe incidents so far.
    pub stripe_incidents: u64,
    /// Top-10 SBE offender cards as `(count, card)`, count-descending.
    pub top_cards: Vec<(u64, u64)>,
    /// Share of all accepted SBEs held by the top-10 cards, percent.
    pub top10_share_pct: f64,
    /// Retirements scheduled during this interval.
    pub retirements: u64,
    /// Retirements scheduled since sim-time zero.
    pub retirements_total: u64,
    /// Hot-spare swaps fired during this interval.
    pub swaps: u64,
    /// Swaps since sim-time zero.
    pub swaps_total: u64,
    /// Hot spares remaining (null until the engine reports the pool).
    pub spares: Option<u64>,
    /// Alerts fired during this interval.
    pub alerts: u64,
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthAlert {
    /// Record discriminator, always `"alert"`.
    pub rec: String,
    /// Fire sequence number, from 1.
    pub seq: u64,
    /// Sim time the rule tripped (interval end for flush-evaluated
    /// rules).
    pub t: u64,
    /// Rule name ([`HealthRule::name`]).
    pub rule: String,
    /// Class the rule watched; empty for class-blind rules.
    pub class: String,
    /// Observed value that tripped the rule.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// `titan-trace` record id of the tripping observation (0 when the
    /// run was untraced).
    pub trace: u64,
}

/// Trailing summary record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSummary {
    /// Record discriminator, always `"summary"`.
    pub rec: String,
    /// Run horizon the sink was finished at.
    pub t_end: u64,
    /// Total events per class over the whole run.
    pub counts: BTreeMap<String, u64>,
    /// Rolling MTBF per class at the final flush.
    pub mtbf: BTreeMap<String, f64>,
    /// Final cumulative stripe contrast.
    pub stripe_contrast: f64,
    /// Final size-matched null.
    pub stripe_null: f64,
    /// Closed stripe incidents.
    pub stripe_incidents: u64,
    /// Final top-10 SBE offender cards.
    pub top_cards: Vec<(u64, u64)>,
    /// Final top-10 share, percent.
    pub top10_share_pct: f64,
    /// Total retirements scheduled.
    pub retirements: u64,
    /// Total swaps fired.
    pub swaps: u64,
    /// Hot spares remaining at the end.
    pub spares: Option<u64>,
    /// Total alerts fired.
    pub alerts: u64,
}

/// A stream record in emission order (snapshot-carried so a resumed
/// run re-renders the exact bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthRec {
    /// A flushed interval.
    Interval {
        /// The record.
        v: HealthInterval,
    },
    /// A fired alert.
    Alert {
        /// The record.
        v: HealthAlert,
    },
}

#[derive(Debug, Clone, Default)]
struct ClassState {
    /// Events this interval.
    interval: u64,
    /// `(events, span_secs)` of the newest ≤`ROLL_INTERVALS` flushed
    /// intervals, oldest first.
    recent: Vec<(u64, u64)>,
    /// Events since sim-time zero.
    total: u64,
    /// Trace id of the newest event of this class.
    last_trace: u64,
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    /// Sliding event-time window (Burst / RetirementPressure).
    times: Vec<u64>,
    /// Whether a latched rule already fired.
    latched: bool,
    /// Re-arming rules hold off until this sim time after a fire, so
    /// one storm raises one alert instead of one per threshold-full.
    holdoff_until: u64,
}

/// Complete serialized state of a [`HealthSink`]; joins `ObsSnapshot`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSnap {
    /// Whether the snapshotted sink was collecting (resume validates
    /// this against the `--health` flag).
    pub enabled: bool,
    /// Interval grid step.
    pub interval_secs: u64,
    /// Next unflushed boundary.
    pub next_boundary: u64,
    /// Start of the interval being accumulated.
    pub cur_lo: u64,
    /// Whether [`HealthSink::finish`] ran.
    pub finished: bool,
    /// Flushed-interval count.
    pub intervals_flushed: u64,
    /// Per-class state: `(class, interval, recent, total, last_trace)`.
    pub classes: Vec<(String, u64, Vec<(u64, u64)>, u64, u64)>,
    /// Cumulative heat grid, row-major.
    pub grid: Vec<u64>,
    /// Cumulative cage heat.
    pub cages: Vec<u64>,
    /// Open stripe incident: even-column events.
    pub stripe_even: u64,
    /// Open stripe incident: odd-column events.
    pub stripe_odd: u64,
    /// Incident-parent time of the open incident.
    pub stripe_last_kept: Option<u64>,
    /// Σ |even − odd| over closed incidents.
    pub stripe_contrast_num: u64,
    /// Σ n·min(1, sqrt(2/(π·n))) over closed incidents.
    pub stripe_null_num: f64,
    /// Σ n over closed incidents.
    pub stripe_events: u64,
    /// Closed incidents.
    pub stripe_incidents: u64,
    /// Accepted SBEs per card serial.
    pub card_sbe: Vec<u64>,
    /// Retirements since sim-time zero.
    pub retirements_total: u64,
    /// Retirements this interval.
    pub retirements_interval: u64,
    /// Swaps since sim-time zero.
    pub swaps_total: u64,
    /// Swaps this interval.
    pub swaps_interval: u64,
    /// Hot spares remaining, when known.
    pub spares: Option<u64>,
    /// MTBF map of the newest flush.
    pub mtbf_last: Vec<(String, f64)>,
    /// Alerts fired in total.
    pub alerts_total: u64,
    /// Alerts fired this interval.
    pub alerts_interval: u64,
    /// Per-rule sliding windows, latches, and re-arm holdoffs.
    pub rule_state: Vec<(Vec<u64>, bool, u64)>,
    /// Every record emitted so far, in order.
    pub records: Vec<HealthRec>,
}

/// The streaming health evaluator. Disabled sinks ignore every hook
/// behind a single branch, so engine call sites are identical on both
/// paths (the telemetry pure-observer invariant).
#[derive(Debug)]
pub struct HealthSink {
    enabled: bool,
    interval_secs: u64,
    rules: Vec<HealthRule>,
    rule_state: Vec<RuleState>,
    next_boundary: u64,
    cur_lo: u64,
    finished: bool,
    intervals_flushed: u64,
    /// Per-class streaming state in first-seen order. A `Vec` rather
    /// than a map: the per-event lookup goes through `class_memo`, and
    /// the rendered documents sort by name at flush time, so ordering
    /// here never reaches the output.
    classes: Vec<(String, ClassState)>,
    /// Hot-path accelerator: `(ptr, len, index)` of every `&'static
    /// str` class label already routed to its `classes` slot. Same
    /// pointer + length ⇒ same literal, so the common case is two
    /// integer compares instead of a string search. Purely a cache —
    /// not snapshotted, rebuilt lazily after a restore.
    class_memo: Vec<(usize, usize, usize)>,
    /// Burst-rule targets resolved to `classes` indices on first
    /// encounter, so the per-event rule scan compares integers, not
    /// strings. Lazily resolved, reset on restore.
    burst_target: Vec<Option<usize>>,
    grid: Vec<u64>,
    cages: Vec<u64>,
    stripe_even: u64,
    stripe_odd: u64,
    stripe_last_kept: Option<u64>,
    stripe_contrast_num: u64,
    stripe_null_num: f64,
    stripe_events: u64,
    stripe_incidents: u64,
    card_sbe: Vec<u64>,
    retirements_total: u64,
    retirements_interval: u64,
    swaps_total: u64,
    swaps_interval: u64,
    spares: Option<u64>,
    mtbf_last: BTreeMap<String, f64>,
    alerts_total: u64,
    alerts_interval: u64,
    records: Vec<HealthRec>,
}

impl HealthSink {
    /// A sink on the default weekly grid with the default rule set.
    pub fn new(enabled: bool) -> Self {
        HealthSink::with_rules(enabled, DEFAULT_HEALTH_INTERVAL_SECS, olcf_default_rules())
    }

    /// A sink with an explicit grid and rule set.
    pub fn with_rules(enabled: bool, interval_secs: u64, rules: Vec<HealthRule>) -> Self {
        let interval_secs = interval_secs.max(1);
        let rule_state = rules.iter().map(|_| RuleState::default()).collect();
        let burst_target = vec![None; rules.len()];
        HealthSink {
            enabled,
            interval_secs,
            rules,
            rule_state,
            next_boundary: interval_secs,
            cur_lo: 0,
            finished: false,
            intervals_flushed: 0,
            classes: Vec::new(),
            class_memo: Vec::new(),
            burst_target,
            grid: vec![0; HEALTH_ROWS * HEALTH_COLS],
            cages: vec![0; HEALTH_CAGES],
            stripe_even: 0,
            stripe_odd: 0,
            stripe_last_kept: None,
            stripe_contrast_num: 0,
            stripe_null_num: 0.0,
            stripe_events: 0,
            stripe_incidents: 0,
            card_sbe: Vec::new(),
            retirements_total: 0,
            retirements_interval: 0,
            swaps_total: 0,
            swaps_interval: 0,
            spares: None,
            mtbf_last: BTreeMap::new(),
            alerts_total: 0,
            alerts_interval: 0,
            records: Vec::new(),
        }
    }

    /// Whether the sink is collecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Advances the interval grid to the engine's monotone loop time,
    /// flushing every boundary at or below `t`. Called once per
    /// dequeued event; the cheap path is one compare.
    #[inline]
    pub fn tick(&mut self, t: u64) {
        if !self.enabled {
            return;
        }
        while self.next_boundary <= t {
            let b = self.next_boundary;
            self.flush_interval(b);
            self.next_boundary = b.saturating_add(self.interval_secs);
        }
    }

    /// Feeds one console-visible error event.
    pub fn on_console(&mut self, ev: HealthEvent) {
        if !self.enabled {
            return;
        }
        if ev.hardware {
            let cell = usize::from(ev.row) * HEALTH_COLS + usize::from(ev.col);
            if let Some(c) = self.grid.get_mut(cell) {
                *c += 1;
            }
            if let Some(c) = self.cages.get_mut(usize::from(ev.cage)) {
                *c += 1;
            }
        }
        if ev.class == STRIPE_CLASS {
            self.stripe_feed(ev.t, ev.col);
        }
        self.on_class_event(ev.class, ev.t, ev.trace);
    }

    /// Feeds one accepted single-bit error (nvidia-smi visibility only,
    /// so it arrives outside the console path).
    pub fn on_sbe(&mut self, card: u64, t: u64, trace: u64) {
        if !self.enabled {
            return;
        }
        let idx = as_usize(card);
        if self.card_sbe.len() <= idx {
            self.card_sbe.resize(idx + 1, 0);
        }
        if let Some(c) = self.card_sbe.get_mut(idx) {
            *c += 1;
        }
        self.on_class_event("sbe", t, trace);
    }

    /// Feeds one scheduled page retirement.
    pub fn on_retirement(&mut self, t: u64, trace: u64) {
        if !self.enabled {
            return;
        }
        self.retirements_total += 1;
        self.retirements_interval += 1;
        let mut fired: Vec<(f64, f64)> = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.rule_state.iter_mut()) {
            if let HealthRule::RetirementPressure { count, window_secs } = rule {
                if t < state.holdoff_until {
                    continue;
                }
                state.times.push(t);
                state.times.retain(|&x| t.saturating_sub(x) < *window_secs);
                if as_u64(state.times.len()) >= *count {
                    fired.push((to_f64(as_u64(state.times.len())), to_f64(*count)));
                    state.times.clear();
                    state.holdoff_until = t.saturating_add(*window_secs);
                }
            }
        }
        for (value, threshold) in fired {
            self.fire(t, "retirement_pressure", "", value, threshold, trace);
        }
    }

    /// Feeds one hot-spare swap; `spares_left` is the pool size after.
    pub fn on_swap(&mut self, t: u64, spares_left: u64, trace: u64) {
        if !self.enabled {
            return;
        }
        self.swaps_total += 1;
        self.swaps_interval += 1;
        self.spares = Some(spares_left);
        let mut fired: Vec<(f64, f64)> = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.rule_state.iter_mut()) {
            if let HealthRule::SpareDepletion { below } = rule {
                if spares_left < *below && !state.latched {
                    state.latched = true;
                    fired.push((to_f64(spares_left), to_f64(*below)));
                }
            }
        }
        for (value, threshold) in fired {
            self.fire(t, "spare_depletion", "", value, threshold, trace);
        }
    }

    /// Records the initial hot-spare pool size; later calls are ignored
    /// so a resumed run keeps the restored gauge.
    pub fn set_spares_baseline(&mut self, spares: u64) {
        if !self.enabled || self.spares.is_some() {
            return;
        }
        self.spares = Some(spares);
    }

    /// Flushes every remaining boundary up to the run horizon plus the
    /// final partial interval. Idempotent.
    pub fn finish(&mut self, t_end: u64) {
        if !self.enabled || self.finished {
            return;
        }
        self.finished = true;
        self.close_stripe_incident();
        while self.next_boundary <= t_end {
            let b = self.next_boundary;
            self.flush_interval(b);
            self.next_boundary = b.saturating_add(self.interval_secs);
        }
        if t_end > self.cur_lo {
            self.flush_interval(t_end);
        }
    }

    /// Routes a `&'static str` class label to its `classes` slot. The
    /// hot path is a pointer+length scan over `class_memo` (the labels
    /// are a closed set of literals, so identity is content); the slow
    /// path — first sighting of a label, or the first event after a
    /// restore emptied the memo — falls back to a string search and
    /// caches the result.
    fn class_index(&mut self, class: &'static str) -> usize {
        // lint: allow(T1, the address is a memo identity key only; the index it yields comes from insertion-ordered `classes`, so no pointer value reaches state or output)
        // lint: allow(N1, usize is pointer-sized, so ptr-to-usize never truncates)
        let key = (class.as_ptr() as usize, class.len());
        for &(p, l, i) in &self.class_memo {
            if p == key.0 && l == key.1 {
                return i;
            }
        }
        let idx = match self.classes.iter().position(|(n, _)| n == class) {
            Some(i) => i,
            None => {
                self.classes.push((class.to_string(), ClassState::default()));
                self.classes.len() - 1
            }
        };
        self.class_memo.push((key.0, key.1, idx));
        idx
    }

    fn on_class_event(&mut self, class: &'static str, t: u64, trace: u64) {
        let idx = self.class_index(class);
        let st = match self.classes.get_mut(idx) {
            Some((_, s)) => s,
            None => return,
        };
        st.interval += 1;
        st.total += 1;
        st.last_trace = trace;
        let mut fired: Vec<(String, f64, f64)> = Vec::new();
        for (ri, (rule, state)) in self.rules.iter().zip(self.rule_state.iter_mut()).enumerate() {
            if let HealthRule::Burst {
                class: rc,
                count,
                window_secs,
            } = rule
            {
                // Resolve the rule's class to an index once; after
                // that the per-event check is an integer compare.
                let hits = match self.burst_target.get_mut(ri) {
                    Some(slot) => match *slot {
                        Some(ci) => ci == idx,
                        None if rc == class => {
                            *slot = Some(idx);
                            true
                        }
                        None => false,
                    },
                    None => false,
                };
                if hits {
                    if t < state.holdoff_until {
                        continue;
                    }
                    state.times.push(t);
                    state.times.retain(|&x| t.saturating_sub(x) < *window_secs);
                    if as_u64(state.times.len()) >= *count {
                        fired.push((
                            rc.clone(),
                            to_f64(as_u64(state.times.len())),
                            to_f64(*count),
                        ));
                        state.times.clear();
                        state.holdoff_until = t.saturating_add(*window_secs);
                    }
                }
            }
        }
        for (class, value, threshold) in fired {
            self.fire(t, "burst", &class, value, threshold, trace);
        }
    }

    /// Online incident grouping with `incident_stripe`'s rule: a parent
    /// plus everything within the window of the last kept parent.
    fn stripe_feed(&mut self, t: u64, col: u8) {
        let same_incident = matches!(
            self.stripe_last_kept,
            Some(kept) if t.saturating_sub(kept) < STRIPE_WINDOW_SECS
        );
        if !same_incident {
            self.close_stripe_incident();
            self.stripe_last_kept = Some(t);
        }
        if col % 2 == 0 {
            self.stripe_even += 1;
        } else {
            self.stripe_odd += 1;
        }
    }

    fn close_stripe_incident(&mut self) {
        let n = self.stripe_even + self.stripe_odd;
        if n == 0 {
            return;
        }
        // Event-weighted terms of `incident_stripe`: n·(|even−odd|/n)
        // collapses to |even−odd|, an exact integer.
        self.stripe_contrast_num += self.stripe_even.abs_diff(self.stripe_odd);
        let nf = to_f64(n);
        self.stripe_null_num += nf * (2.0 / (std::f64::consts::PI * nf)).sqrt().min(1.0);
        self.stripe_events += n;
        self.stripe_incidents += 1;
        self.stripe_even = 0;
        self.stripe_odd = 0;
    }

    fn stripe_stats(&self) -> (f64, f64) {
        if self.stripe_events == 0 {
            return (0.0, 0.0);
        }
        (
            ratio(self.stripe_contrast_num, self.stripe_events),
            self.stripe_null_num / to_f64(self.stripe_events),
        )
    }

    fn top_cards(&self) -> (Vec<(u64, u64)>, f64) {
        let mut cards: Vec<(u64, u64)> = self
            .card_sbe
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, as_u64(i)))
            .collect();
        cards.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cards.truncate(TOP_CARDS);
        let total: u64 = self.card_sbe.iter().sum();
        let top: u64 = cards.iter().map(|(c, _)| *c).sum();
        (cards, 100.0 * ratio(top, total))
    }

    fn hot_cabinets(&self) -> Vec<(u64, u64, u64)> {
        let mut cells: Vec<(u64, u64, u64)> = self
            .grid
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, as_u64(i / HEALTH_COLS), as_u64(i % HEALTH_COLS)))
            .collect();
        cells.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        cells.truncate(TOP_CABINETS);
        cells
    }

    fn flush_interval(&mut self, t_hi: u64) {
        let t_lo = self.cur_lo;
        let span = t_hi.saturating_sub(t_lo);
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut mtbf: BTreeMap<String, f64> = BTreeMap::new();
        for (name, st) in self.classes.iter_mut() {
            counts.insert(name.clone(), st.interval);
            st.recent.push((st.interval, span));
            if st.recent.len() > ROLL_INTERVALS {
                st.recent.remove(0);
            }
            st.interval = 0;
            let ev_sum: u64 = st.recent.iter().map(|(c, _)| *c).sum();
            let span_sum: u64 = st.recent.iter().map(|(_, s)| *s).sum();
            mtbf.insert(name.clone(), ratio(span_sum, ev_sum));
        }
        self.mtbf_last = mtbf.clone();
        let (top_cards, top10_share_pct) = self.top_cards();

        // Flush-evaluated rules fire before the interval record so the
        // record's alert count includes them.
        let mut fired: Vec<(&'static str, String, f64, f64, u64)> = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.rule_state.iter_mut()) {
            match rule {
                HealthRule::MtbfBelow { class, secs } => {
                    let by_name = self.classes.iter().find(|(n, _)| n == class).map(|(_, s)| s);
                    let Some((m, st)) = mtbf.get(class).zip(by_name) else {
                        continue;
                    };
                    if *m > 0.0 && *m < *secs && !state.latched {
                        state.latched = true;
                        fired.push(("mtbf_below", class.clone(), *m, *secs, st.last_trace));
                    }
                }
                HealthRule::OffenderShare { min_pct } => {
                    let sbe_trace = self
                        .classes
                        .iter()
                        .find(|(n, _)| n == "sbe")
                        .map_or(0, |(_, st)| st.last_trace);
                    if top10_share_pct >= *min_pct && top10_share_pct > 0.0 && !state.latched {
                        state.latched = true;
                        fired.push((
                            "offender_share",
                            "sbe".to_string(),
                            top10_share_pct,
                            *min_pct,
                            sbe_trace,
                        ));
                    }
                }
                _ => {}
            }
        }
        for (rule, class, value, threshold, trace) in fired {
            self.fire(t_hi, rule, &class, value, threshold, trace);
        }

        let (stripe_contrast, stripe_null) = self.stripe_stats();
        let record = HealthInterval {
            rec: "interval".to_string(),
            index: self.intervals_flushed,
            t_lo,
            t_hi,
            counts,
            mtbf: self.mtbf_last.clone(),
            heat_cells: self.grid.clone(),
            heat_cages: self.cages.clone(),
            hot_cabinets: self.hot_cabinets(),
            stripe_contrast,
            stripe_null,
            stripe_incidents: self.stripe_incidents,
            top_cards,
            top10_share_pct,
            retirements: self.retirements_interval,
            retirements_total: self.retirements_total,
            swaps: self.swaps_interval,
            swaps_total: self.swaps_total,
            spares: self.spares,
            alerts: self.alerts_interval,
        };
        self.records.push(HealthRec::Interval { v: record });
        self.intervals_flushed += 1;
        self.retirements_interval = 0;
        self.swaps_interval = 0;
        self.alerts_interval = 0;
        self.cur_lo = t_hi;
    }

    fn fire(&mut self, t: u64, rule: &str, class: &str, value: f64, threshold: f64, trace: u64) {
        self.alerts_total += 1;
        self.alerts_interval += 1;
        self.records.push(HealthRec::Alert {
            v: HealthAlert {
                rec: "alert".to_string(),
                seq: self.alerts_total,
                t,
                rule: rule.to_string(),
                class: class.to_string(),
                value,
                threshold,
                trace,
            },
        });
    }

    /// Renders the full `titan-health/1` JSONL doc: header, then every
    /// interval/alert record in emission order, then the summary.
    pub fn render_jsonl(&self, seed: u64, window_days: u64) -> String {
        let intervals = self
            .records
            .iter()
            .filter(|r| matches!(r, HealthRec::Interval { .. }))
            .count();
        let header = HealthHeader {
            schema: HEALTH_SCHEMA.to_string(),
            seed,
            window_days,
            interval_secs: self.interval_secs,
            intervals: as_u64(intervals),
            alerts: self.alerts_total,
            rules: self.rules.clone(),
        };
        let mut out = String::new();
        let mut line = |json: Result<String, serde_json::Error>| {
            out.push_str(&json.unwrap_or_else(|_| "{}".to_string()));
            out.push('\n');
        };
        line(serde_json::to_string(&header));
        for rec in &self.records {
            match rec {
                HealthRec::Interval { v } => line(serde_json::to_string(v)),
                HealthRec::Alert { v } => line(serde_json::to_string(v)),
            }
        }
        let counts: BTreeMap<String, u64> = self
            .classes
            .iter()
            .map(|(k, st)| (k.clone(), st.total))
            .collect();
        let (top_cards, top10_share_pct) = self.top_cards();
        let (stripe_contrast, stripe_null) = self.stripe_stats();
        let summary = HealthSummary {
            rec: "summary".to_string(),
            t_end: self.cur_lo,
            counts,
            mtbf: self.mtbf_last.clone(),
            stripe_contrast,
            stripe_null,
            stripe_incidents: self.stripe_incidents,
            top_cards,
            top10_share_pct,
            retirements: self.retirements_total,
            swaps: self.swaps_total,
            spares: self.spares,
            alerts: self.alerts_total,
        };
        line(serde_json::to_string(&summary));
        out
    }

    /// Captures the complete mutable state.
    pub fn snap(&self) -> HealthSnap {
        HealthSnap {
            enabled: self.enabled,
            interval_secs: self.interval_secs,
            next_boundary: self.next_boundary,
            cur_lo: self.cur_lo,
            finished: self.finished,
            intervals_flushed: self.intervals_flushed,
            classes: self
                .classes
                .iter()
                .map(|(k, st)| {
                    (
                        k.clone(),
                        st.interval,
                        st.recent.clone(),
                        st.total,
                        st.last_trace,
                    )
                })
                .collect(),
            grid: self.grid.clone(),
            cages: self.cages.clone(),
            stripe_even: self.stripe_even,
            stripe_odd: self.stripe_odd,
            stripe_last_kept: self.stripe_last_kept,
            stripe_contrast_num: self.stripe_contrast_num,
            stripe_null_num: self.stripe_null_num,
            stripe_events: self.stripe_events,
            stripe_incidents: self.stripe_incidents,
            card_sbe: self.card_sbe.clone(),
            retirements_total: self.retirements_total,
            retirements_interval: self.retirements_interval,
            swaps_total: self.swaps_total,
            swaps_interval: self.swaps_interval,
            spares: self.spares,
            mtbf_last: self.mtbf_last.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            alerts_total: self.alerts_total,
            alerts_interval: self.alerts_interval,
            rule_state: self
                .rule_state
                .iter()
                .map(|s| (s.times.clone(), s.latched, s.holdoff_until))
                .collect(),
            records: self.records.clone(),
        }
    }

    /// Absolute restore from a snapshot. A disabled sink stays inert
    /// (the run was checkpointed without `--health`, or the resume
    /// dropped it); rules keep the sink's own set — only their mutable
    /// state is restored.
    pub fn restore(&mut self, snap: &HealthSnap) {
        if !self.enabled || !snap.enabled {
            return;
        }
        self.interval_secs = snap.interval_secs.max(1);
        self.next_boundary = snap.next_boundary;
        self.cur_lo = snap.cur_lo;
        self.finished = snap.finished;
        self.intervals_flushed = snap.intervals_flushed;
        self.classes = snap
            .classes
            .iter()
            .map(|(k, interval, recent, total, last_trace)| {
                (
                    k.clone(),
                    ClassState {
                        interval: *interval,
                        recent: recent.clone(),
                        total: *total,
                        last_trace: *last_trace,
                    },
                )
            })
            .collect();
        // The pointer memo and resolved burst targets index into the
        // old `classes` — drop them; both rebuild lazily and identically
        // on the next events.
        self.class_memo.clear();
        for t in self.burst_target.iter_mut() {
            *t = None;
        }
        self.grid = snap.grid.clone();
        self.cages = snap.cages.clone();
        self.stripe_even = snap.stripe_even;
        self.stripe_odd = snap.stripe_odd;
        self.stripe_last_kept = snap.stripe_last_kept;
        self.stripe_contrast_num = snap.stripe_contrast_num;
        self.stripe_null_num = snap.stripe_null_num;
        self.stripe_events = snap.stripe_events;
        self.stripe_incidents = snap.stripe_incidents;
        self.card_sbe = snap.card_sbe.clone();
        self.retirements_total = snap.retirements_total;
        self.retirements_interval = snap.retirements_interval;
        self.swaps_total = snap.swaps_total;
        self.swaps_interval = snap.swaps_interval;
        self.spares = snap.spares;
        self.mtbf_last = snap.mtbf_last.iter().cloned().collect();
        self.alerts_total = snap.alerts_total;
        self.alerts_interval = snap.alerts_interval;
        let mut state = snap.rule_state.iter();
        for rs in self.rule_state.iter_mut() {
            let (times, latched, holdoff) = state.next().cloned().unwrap_or_default();
            rs.times = times;
            rs.latched = latched;
            rs.holdoff_until = holdoff;
        }
        self.records = snap.records.clone();
    }
}

impl Default for HealthSnap {
    fn default() -> Self {
        HealthSink::new(false).snap()
    }
}

/// A parsed `titan-health/1` doc.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthDoc {
    /// The header line.
    pub header: HealthHeader,
    /// Interval and alert records in stream order.
    pub records: Vec<HealthRec>,
    /// The trailing summary (absent only in truncated files).
    pub summary: Option<HealthSummary>,
}

impl HealthDoc {
    /// Interval records in stream order.
    pub fn intervals(&self) -> impl Iterator<Item = &HealthInterval> {
        self.records.iter().filter_map(|r| match r {
            HealthRec::Interval { v } => Some(v),
            HealthRec::Alert { .. } => None,
        })
    }

    /// Alert records in fire order.
    pub fn alerts(&self) -> impl Iterator<Item = &HealthAlert> {
        self.records.iter().filter_map(|r| match r {
            HealthRec::Alert { v } => Some(v),
            HealthRec::Interval { .. } => None,
        })
    }
}

/// Parses a rendered `titan-health/1` JSONL doc.
pub fn parse_health(text: &str) -> Result<HealthDoc, String> {
    let mut lines = text.lines();
    let first = lines.next().ok_or("empty health file")?;
    let header: HealthHeader =
        serde_json::from_str(first).map_err(|e| format!("health header: {e}"))?;
    if header.schema != HEALTH_SCHEMA {
        return Err(format!(
            "unsupported health schema `{}` (expected `{HEALTH_SCHEMA}`)",
            header.schema
        ));
    }
    let mut records = Vec::new();
    let mut summary = None;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        if line.contains("\"rec\":\"interval\"") {
            let v: HealthInterval =
                serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
            records.push(HealthRec::Interval { v });
        } else if line.contains("\"rec\":\"alert\"") {
            let v: HealthAlert =
                serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
            records.push(HealthRec::Alert { v });
        } else if line.contains("\"rec\":\"summary\"") {
            if summary.is_some() {
                return Err(format!("line {lineno}: duplicate summary record"));
            }
            let v: HealthSummary =
                serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
            summary = Some(v);
        } else {
            return Err(format!("line {lineno}: unrecognized health record"));
        }
    }
    Ok(HealthDoc {
        header,
        records,
        summary,
    })
}

/// Density ramp for the watch heatmap.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn ramp(v: u64, max: u64) -> char {
    if v == 0 || max == 0 {
        return ' ';
    }
    let idx = 1 + as_usize(v.saturating_mul(8) / max);
    RAMP.get(idx.min(9)).copied().unwrap_or('@')
}

/// Deterministic end-of-run summary view (`health summarize`).
pub fn summarize_health(doc: &HealthDoc) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let h = &doc.header;
    let _ = writeln!(
        s,
        "titan-health seed {} window {}d  interval {}s  intervals {}  alerts {}",
        h.seed, h.window_days, h.interval_secs, h.intervals, h.alerts
    );
    if let Some(sum) = &doc.summary {
        let _ = writeln!(s, "\nclass totals (rolling MTBF at end, seconds):");
        for (class, count) in &sum.counts {
            let m = sum.mtbf.get(class).copied().unwrap_or(0.0);
            let _ = writeln!(s, "  {class:<28} {count:>9}  mtbf {m:>12.0}");
        }
        let _ = writeln!(
            s,
            "\nstripe (xid13, 5s incidents): contrast {:.3} vs null {:.3} over {} incidents",
            sum.stripe_contrast, sum.stripe_null, sum.stripe_incidents
        );
        let _ = writeln!(
            s,
            "top-10 offender cards hold {:.1}% of accepted SBEs:",
            sum.top10_share_pct
        );
        for (count, card) in &sum.top_cards {
            let _ = writeln!(s, "  card {card:>6}  sbe {count}");
        }
        let spares = sum
            .spares
            .map_or("unknown".to_string(), |v| v.to_string());
        let _ = writeln!(
            s,
            "retirements {}  swaps {}  spares left {}",
            sum.retirements, sum.swaps, spares
        );
    }
    let alerts: Vec<&HealthAlert> = doc.alerts().collect();
    if alerts.is_empty() {
        let _ = writeln!(s, "\nno alerts fired");
    } else {
        let _ = writeln!(s, "\nalerts:");
        for a in alerts {
            let _ = writeln!(
                s,
                "  #{:<3} t={:>9}  {:<20} {:<28} value {:.1} (threshold {:.1})  trace {}",
                a.seq, a.t, a.rule, a.class, a.value, a.threshold, a.trace
            );
        }
    }
    s
}

/// Deterministic per-interval fleet view (`health watch`): one frame
/// per interval with the cumulative cabinet heatmap (8 column lines ×
/// 25 row characters — the machine-room floor on its side), hottest
/// cabinets, offender share and the interval's alerts.
pub fn watch_health(doc: &HealthDoc) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let h = &doc.header;
    let _ = writeln!(
        s,
        "titan-health watch  seed {}  {} intervals of {}s",
        h.seed, h.intervals, h.interval_secs
    );
    for iv in doc.intervals() {
        let _ = writeln!(
            s,
            "\n=== interval {}  [{} .. {}){} ===",
            iv.index,
            iv.t_lo,
            iv.t_hi,
            if iv.alerts > 0 {
                format!("  ALERTS {}", iv.alerts)
            } else {
                String::new()
            }
        );
        let max = iv.heat_cells.iter().copied().max().unwrap_or(0);
        for col in 0..HEALTH_COLS {
            let mut row_chars = String::new();
            for row in 0..HEALTH_ROWS {
                let v = iv
                    .heat_cells
                    .get(row * HEALTH_COLS + col)
                    .copied()
                    .unwrap_or(0);
                row_chars.push(ramp(v, max));
            }
            let _ = writeln!(s, "  col{col} |{row_chars}|");
        }
        let cages: Vec<String> = iv.heat_cages.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(s, "  cage heat [bottom,middle,top]: [{}]", cages.join(","));
        let hot: Vec<String> = iv
            .hot_cabinets
            .iter()
            .map(|(c, r, col)| format!("r{r}c{col}={c}"))
            .collect();
        let _ = writeln!(
            s,
            "  hot cabinets: {}",
            if hot.is_empty() {
                "none".to_string()
            } else {
                hot.join("  ")
            }
        );
        let _ = writeln!(
            s,
            "  stripe contrast {:.3} (null {:.3}, {} incidents)  top10 sbe share {:.1}%",
            iv.stripe_contrast, iv.stripe_null, iv.stripe_incidents, iv.top10_share_pct
        );
        let _ = writeln!(
            s,
            "  retirements {} (total {})  swaps {} (total {})  spares {}",
            iv.retirements,
            iv.retirements_total,
            iv.swaps,
            iv.swaps_total,
            iv.spares.map_or("?".to_string(), |v| v.to_string())
        );
    }
    for a in doc.alerts() {
        let _ = writeln!(
            s,
            "alert #{} t={} {} {} value {:.1} threshold {:.1} trace {}",
            a.seq, a.t, a.rule, a.class, a.value, a.threshold, a.trace
        );
    }
    s
}

/// Walks every fired alert's `trace` id back through a `titan-trace/1`
/// record set to its fault-draft root. Returns the number of chains
/// walked; the error names the first alert whose provenance is broken
/// (no trace id, dangling parent, or a root that is not a fault draft).
pub fn verify_health_alerts(doc: &HealthDoc, records: &[TraceRecord]) -> Result<u64, String> {
    let by_id: BTreeMap<u64, &TraceRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut walked = 0u64;
    for a in doc.alerts() {
        if a.trace == 0 {
            return Err(format!(
                "alert #{} ({}) carries no trace id — record the run with --trace to verify \
                 alert provenance",
                a.seq, a.rule
            ));
        }
        let mut cur = a.trace;
        let mut steps = 0u32;
        loop {
            let Some(rec) = by_id.get(&cur) else {
                return Err(format!(
                    "alert #{} ({}) references trace id {cur} which is not in the trace",
                    a.seq, a.rule
                ));
            };
            if rec.parent == 0 {
                if rec.kind != "fault_draft" {
                    return Err(format!(
                        "alert #{} ({}) chain ends at `{}` record {} instead of a fault draft",
                        a.seq, a.rule, rec.kind, rec.id
                    ));
                }
                break;
            }
            cur = rec.parent;
            steps += 1;
            if steps > 64 {
                return Err(format!(
                    "alert #{} ({}) chain exceeds 64 steps (parent cycle?)",
                    a.seq, a.rule
                ));
            }
        }
        walked += 1;
    }
    Ok(walked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, class: &'static str, row: u8, col: u8, trace: u64) -> HealthEvent {
        HealthEvent {
            t,
            class,
            hardware: class == "dbe",
            row,
            col,
            cage: 1,
            trace,
        }
    }

    fn quiet_rules() -> Vec<HealthRule> {
        vec![HealthRule::Burst {
            class: "dbe".to_string(),
            count: 1_000_000,
            window_secs: 1,
        }]
    }

    #[test]
    fn disabled_sink_is_inert() {
        let mut h = HealthSink::new(false);
        h.tick(1_000_000);
        h.on_console(ev(5, "dbe", 1, 2, 7));
        h.on_sbe(3, 6, 8);
        h.on_retirement(7, 9);
        h.on_swap(8, 2, 10);
        h.finish(1_000_000);
        assert!(!h.is_enabled());
        let doc = parse_health(&h.render_jsonl(1, 10)).expect("parse");
        assert_eq!(doc.header.intervals, 0);
        assert_eq!(doc.header.alerts, 0);
    }

    #[test]
    fn intervals_flush_on_the_absolute_grid() {
        let mut h = HealthSink::with_rules(true, 100, quiet_rules());
        // The engine ticks the loop clock before feeding each event.
        h.tick(10);
        h.on_console(ev(10, "dbe", 2, 3, 1));
        h.tick(150); // crosses boundary 100
        h.on_console(ev(150, "dbe", 2, 3, 2));
        h.tick(460); // crosses 200, 300, 400 with no events
        h.finish(460);
        let doc = parse_health(&h.render_jsonl(42, 1)).expect("parse");
        let ivs: Vec<&HealthInterval> = doc.intervals().collect();
        // [0,100) [100,200) [200,300) [300,400) [400,460]
        assert_eq!(ivs.len(), 5);
        let counts: Vec<u64> = ivs.iter().map(|i| i.counts.get("dbe").copied().unwrap_or(0)).collect();
        assert_eq!(counts, vec![1, 1, 0, 0, 0]);
        let first = ivs.first().expect("first");
        assert_eq!((first.t_lo, first.t_hi), (0, 100));
        let last = ivs.last().expect("last");
        assert_eq!((last.t_lo, last.t_hi), (400, 460));
        // Heat is cumulative: both events land on cabinet (2,3), cage 1.
        assert_eq!(last.heat_cells.iter().sum::<u64>(), 2);
        assert_eq!(last.hot_cabinets, vec![(2, 2, 3)]);
        assert_eq!(last.heat_cages, vec![0, 2, 0]);
        let sum = doc.summary.expect("summary");
        assert_eq!(sum.t_end, 460);
        assert_eq!(sum.counts.get("dbe"), Some(&2));
    }

    #[test]
    fn rolling_mtbf_spans_the_newest_four_intervals() {
        let mut h = HealthSink::with_rules(true, 100, quiet_rules());
        // 4 events in [0,100), nothing afterwards.
        for t in [10, 20, 30, 40] {
            h.on_console(ev(t, "dbe", 0, 0, 0));
        }
        h.finish(600);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        let mtbfs: Vec<f64> = doc
            .intervals()
            .map(|i| i.mtbf.get("dbe").copied().unwrap_or(-1.0))
            .collect();
        // Interval 0: 100s / 4 events = 25. Interval 3: 400s / 4 = 100.
        // Interval 4: the event interval rolled out → sentinel 0.0.
        assert_eq!(mtbfs, vec![25.0, 50.0, 75.0, 100.0, 0.0, 0.0]);
    }

    #[test]
    fn burst_rule_fires_and_rearms() {
        let rules = vec![HealthRule::Burst {
            class: "dbe".to_string(),
            count: 3,
            window_secs: 60,
        }];
        let mut h = HealthSink::with_rules(true, 1_000, rules);
        for t in [10, 20, 30] {
            h.on_console(ev(t, "dbe", 0, 0, t));
        }
        // Still inside the holdoff (fire + 60 s): one storm, one alert —
        // these three would otherwise re-fill the threshold immediately.
        for t in [40, 50, 60] {
            h.on_console(ev(t, "dbe", 0, 0, t));
        }
        // Far outside the window: re-armed, needs 3 fresh events.
        for t in [500, 510] {
            h.on_console(ev(t, "dbe", 0, 0, t));
        }
        h.finish(1_000);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        let alerts: Vec<&HealthAlert> = doc.alerts().collect();
        assert_eq!(alerts.len(), 1);
        let a = alerts.first().expect("one alert");
        assert_eq!((a.seq, a.t, a.trace), (1, 30, 30));
        assert_eq!(a.rule, "burst");
        assert_eq!(a.class, "dbe");
        assert_eq!((a.value, a.threshold), (3.0, 3.0));
        // The interval record counted it.
        let iv = doc.intervals().next().expect("interval");
        assert_eq!(iv.alerts, 1);

        // A fresh storm after the holdoff fires again.
        let rules = vec![HealthRule::Burst {
            class: "dbe".to_string(),
            count: 3,
            window_secs: 60,
        }];
        let mut h = HealthSink::with_rules(true, 10_000, rules);
        for t in [10, 20, 30, 200, 210, 220] {
            h.on_console(ev(t, "dbe", 0, 0, t));
        }
        h.finish(10_000);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        assert_eq!(doc.alerts().count(), 2);
    }

    #[test]
    fn latched_rules_fire_once() {
        let rules = vec![HealthRule::SpareDepletion { below: 5 }];
        let mut h = HealthSink::with_rules(true, 1_000, rules);
        h.set_spares_baseline(6);
        h.on_swap(10, 4, 1);
        h.on_swap(20, 3, 2);
        h.finish(100);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        assert_eq!(doc.alerts().count(), 1);
        let sum = doc.summary.expect("summary");
        assert_eq!(sum.spares, Some(3));
        assert_eq!(sum.swaps, 2);
    }

    #[test]
    fn mtbf_below_fires_at_flush_with_class_trace() {
        let rules = vec![HealthRule::MtbfBelow {
            class: "dbe".to_string(),
            secs: 100.0,
        }];
        let mut h = HealthSink::with_rules(true, 100, rules);
        for t in [10, 20] {
            h.on_console(ev(t, "dbe", 0, 0, 40 + t));
        }
        h.finish(100);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        let a = doc.alerts().next().expect("alert");
        assert_eq!(a.rule, "mtbf_below");
        assert_eq!(a.t, 100);
        assert_eq!(a.value, 50.0);
        assert_eq!(a.trace, 60, "carries the newest dbe event's trace id");
    }

    #[test]
    fn offender_share_tracks_top_cards() {
        let rules = vec![HealthRule::OffenderShare { min_pct: 50.0 }];
        let mut h = HealthSink::with_rules(true, 1_000, rules);
        // Card 7 hoards SBEs; 11 other cards take one each.
        for i in 0..20 {
            h.on_sbe(7, i, 100 + i);
        }
        for card in 10..21 {
            h.on_sbe(card, 30 + card, 200 + card);
        }
        h.finish(1_000);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        let sum = doc.summary.clone().expect("summary");
        let top = sum.top_cards.first().expect("top card");
        assert_eq!(*top, (20, 7));
        assert_eq!(sum.top_cards.len(), 10);
        // Top-10 hold 29 of 31.
        assert!((sum.top10_share_pct - 100.0 * 29.0 / 31.0).abs() < 1e-9);
        let a = doc.alerts().next().expect("offender alert");
        assert_eq!(a.rule, "offender_share");
        assert_eq!(a.class, "sbe");
    }

    #[test]
    fn stripe_matches_incident_math() {
        let mut h = HealthSink::with_rules(true, 1_000_000, quiet_rules());
        // One 4-event incident striped on even columns, one lone event.
        for (i, col) in [0u8, 2, 4, 6].into_iter().enumerate() {
            h.on_console(ev(100 + as_u64(i), STRIPE_CLASS, 0, col, 0));
        }
        h.on_console(ev(10_000, STRIPE_CLASS, 5, 1, 0));
        h.finish(1_000_000);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        let sum = doc.summary.expect("summary");
        assert_eq!(sum.stripe_incidents, 2);
        // Both incidents are pure-parity: contrast 1.
        assert!((sum.stripe_contrast - 1.0).abs() < 1e-12);
        // Null: (4·sqrt(2/(4π)) + 1·sqrt(2/π)) / 5.
        let expect = (4.0 * (2.0 / (std::f64::consts::PI * 4.0)).sqrt()
            + (2.0 / std::f64::consts::PI).sqrt())
            / 5.0;
        assert!((sum.stripe_null - expect).abs() < 1e-12, "{}", sum.stripe_null);
    }

    #[test]
    fn snapshot_roundtrips_and_resumes_identically() {
        let mk = || {
            let mut h = HealthSink::with_rules(
                true,
                100,
                vec![HealthRule::Burst {
                    class: "dbe".to_string(),
                    count: 2,
                    window_secs: 1_000,
                }],
            );
            h.set_spares_baseline(48);
            h.on_console(ev(10, "dbe", 1, 1, 1));
            h.on_sbe(3, 20, 2);
            h.tick(120);
            h.on_retirement(130, 3);
            h
        };
        let feed_rest = |h: &mut HealthSink| {
            h.on_console(ev(140, "dbe", 1, 2, 4));
            h.on_swap(150, 40, 5);
            h.finish(300);
        };
        // Uninterrupted.
        let mut a = mk();
        feed_rest(&mut a);
        // Snapshot at the cut, restore into a fresh enabled sink.
        let cut = mk();
        let snap = cut.snap();
        let json = serde_json::to_string(&snap).expect("snap json");
        let back: HealthSnap = serde_json::from_str(&json).expect("snap parse");
        assert_eq!(snap, back, "snapshot JSON roundtrip");
        let mut b = HealthSink::with_rules(
            true,
            100,
            vec![HealthRule::Burst {
                class: "dbe".to_string(),
                count: 2,
                window_secs: 1_000,
            }],
        );
        b.restore(&back);
        feed_rest(&mut b);
        assert_eq!(a.render_jsonl(9, 1), b.render_jsonl(9, 1));
        // The burst window straddled the cut: the alert still fired.
        let doc = parse_health(&b.render_jsonl(9, 1)).expect("parse");
        assert_eq!(doc.alerts().filter(|a| a.rule == "burst").count(), 1);
        // A disabled sink ignores restore.
        let mut inert = HealthSink::new(false);
        inert.restore(&back);
        assert_eq!(inert.snap(), HealthSink::new(false).snap());
    }

    #[test]
    fn render_parse_roundtrip_and_views() {
        let mut h = HealthSink::with_rules(true, 50, olcf_default_rules());
        h.set_spares_baseline(48);
        for t in 0..30 {
            h.on_console(ev(t, "dbe", 3, 4, t + 1));
            h.tick(t);
        }
        h.on_swap(40, 30, 99);
        h.finish(120);
        let text = h.render_jsonl(7, 2);
        assert!(text.starts_with("{\"schema\":\"titan-health/1\""));
        let doc = parse_health(&text).expect("parse");
        assert_eq!(doc.header.seed, 7);
        assert_eq!(as_u64(doc.intervals().count()), doc.header.intervals);
        assert_eq!(as_u64(doc.alerts().count()), doc.header.alerts);
        assert!(doc.summary.is_some());
        let s = summarize_health(&doc);
        assert!(s.contains("titan-health seed 7"), "{s}");
        assert!(s.contains("class totals"), "{s}");
        let w = watch_health(&doc);
        assert!(w.contains("=== interval 0"), "{w}");
        assert!(w.contains("col0 |"), "{w}");
        // Spare depletion (30 < 40) fired and both views list it.
        assert!(s.contains("spare_depletion"), "{s}");
        assert!(w.contains("spare_depletion"), "{w}");
        // Garbage rejects cleanly.
        assert!(parse_health("").is_err());
        assert!(parse_health("{\"schema\":\"nope/9\"}").is_err());
        let broken = format!("{}\nnot json", text.lines().next().expect("header"));
        assert!(parse_health(&broken).is_err());
    }

    #[test]
    fn rules_json_roundtrip() {
        let rules = olcf_default_rules();
        let json = rules_to_json(&rules);
        assert!(json.contains("Burst"), "{json}");
        let back = rules_from_json(&json).expect("parse rules");
        assert_eq!(rules, back);
        assert!(rules_from_json("nonsense").is_err());
    }

    fn trace_rec(id: u64, parent: u64, kind: &str) -> TraceRecord {
        TraceRecord {
            id,
            parent,
            kind: kind.to_string(),
            ts: 0,
            card: None,
            node: None,
            apid: None,
            payload: String::new(),
        }
    }

    #[test]
    fn alert_provenance_walks_to_fault_drafts() {
        let mut h = HealthSink::with_rules(
            true,
            1_000,
            vec![HealthRule::Burst {
                class: "dbe".to_string(),
                count: 1,
                window_secs: 10,
            }],
        );
        h.on_console(ev(5, "dbe", 0, 0, 3));
        h.finish(1_000);
        let doc = parse_health(&h.render_jsonl(1, 1)).expect("parse");
        let records = vec![
            trace_rec(1, 0, "fault_draft"),
            trace_rec(2, 1, "engine_event"),
            trace_rec(3, 2, "console_line"),
        ];
        assert_eq!(verify_health_alerts(&doc, &records), Ok(1));
        // A chain rooted off a fault draft fails.
        let bad_root = vec![
            trace_rec(1, 0, "console_line"),
            trace_rec(2, 1, "engine_event"),
            trace_rec(3, 2, "console_line"),
        ];
        assert!(verify_health_alerts(&doc, &bad_root).is_err());
        // A dangling parent fails.
        let dangling = vec![trace_rec(3, 99, "console_line")];
        assert!(verify_health_alerts(&doc, &dangling).is_err());
        // An untraced alert (trace 0) fails with a helpful message.
        let mut h0 = HealthSink::with_rules(
            true,
            1_000,
            vec![HealthRule::Burst {
                class: "dbe".to_string(),
                count: 1,
                window_secs: 10,
            }],
        );
        h0.on_console(ev(5, "dbe", 0, 0, 0));
        h0.finish(1_000);
        let doc0 = parse_health(&h0.render_jsonl(1, 1)).expect("parse");
        let err = verify_health_alerts(&doc0, &records).expect_err("no trace id");
        assert!(err.contains("--trace"), "{err}");
    }
}
