//! Property-based tests for the analysis methodology.

use proptest::prelude::*;
use titan_analysis::filtering::{dedup_job_level, of_kind, split_parents_children};
use titan_analysis::{cooccurrence_heatmap, retirement_delays};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;
use titan_topology::NodeId;

fn arb_kind() -> impl Strategy<Value = GpuErrorKind> {
    prop::sample::select(
        GpuErrorKind::ALL
            .into_iter()
            .filter(|k| *k != GpuErrorKind::SingleBitError)
            .collect::<Vec<_>>(),
    )
}

fn arb_events(max: usize) -> impl Strategy<Value = Vec<ConsoleEvent>> {
    prop::collection::vec(
        (0u64..100_000, 0u32..500, arb_kind(), prop::option::of(0u64..50)),
        0..max,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|e| e.0);
        v.into_iter()
            .map(|(time, node, kind, apid)| ConsoleEvent {
                time,
                node: NodeId(node),
                kind,
                structure: None,
                page: None,
                apid,
            })
            .collect()
    })
}

proptest! {
    /// Filtering conserves events: parents + children == input.
    #[test]
    fn filtering_conserves(events in arb_events(120), window in 1u64..600) {
        let out = split_parents_children(&events, window);
        prop_assert_eq!(out.parents.len() + out.children.len(), events.len());
        let out2 = dedup_job_level(&events, GpuErrorKind::GraphicsEngineException, window);
        prop_assert_eq!(out2.parents.len() + out2.children.len(), events.len());
    }

    /// Filtering is idempotent: re-filtering the parents produces no new
    /// children.
    #[test]
    fn filtering_idempotent(events in arb_events(120), window in 1u64..600) {
        let once = split_parents_children(&events, window);
        let twice = split_parents_children(&once.parents, window);
        prop_assert!(twice.children.is_empty(),
            "second pass found {} children", twice.children.len());
    }

    /// A wider window never yields more parents.
    #[test]
    fn wider_window_fewer_parents(events in arb_events(120), w in 1u64..300) {
        let narrow = dedup_job_level(&events, GpuErrorKind::GpuStoppedProcessing, w);
        let wide = dedup_job_level(&events, GpuErrorKind::GpuStoppedProcessing, w * 2);
        prop_assert!(wide.parents.len() <= narrow.parents.len());
    }

    /// Heatmap fractions are probabilities and the totals account for
    /// every on-axis event.
    #[test]
    fn heatmap_bounds(events in arb_events(100)) {
        let h = cooccurrence_heatmap(&events);
        for row in &h.fraction {
            for &f in row {
                prop_assert!((0.0..=1.0).contains(&f), "{f}");
            }
        }
        let on_axis = events
            .iter()
            .filter(|e| h.kinds.contains(&e.kind))
            .count() as u64;
        prop_assert_eq!(h.totals.iter().sum::<u64>(), on_axis);
    }

    /// Retirement-delay accounting conserves retirement records.
    #[test]
    fn retirement_delay_conservation(events in arb_events(100), since in 0u64..50_000) {
        let d = retirement_delays(&events, since);
        let recs = events
            .iter()
            .filter(|e| e.kind == GpuErrorKind::EccPageRetirement && e.time >= since)
            .count() as u64;
        prop_assert_eq!(d.total_retirements(), recs);
        prop_assert_eq!(d.delays.len() as u64, recs - d.no_preceding_dbe);
        // DBE pairs: n DBEs -> n-1 pairs, classified exhaustively.
        let dbes = events
            .iter()
            .filter(|e| e.kind == GpuErrorKind::DoubleBitError && e.time >= since)
            .count() as u64;
        prop_assert!(d.dbe_pairs_without_retirement <= dbes.saturating_sub(1));
    }

    /// of_kind + dedup on a single-kind stream equals dedup on the mixed
    /// stream restricted to that kind.
    #[test]
    fn kind_restriction_commutes(events in arb_events(100), w in 1u64..120) {
        let kind = GpuErrorKind::GraphicsEngineException;
        let only = of_kind(&events, kind);
        let direct = dedup_job_level(&only, kind, w);
        let mixed = dedup_job_level(&events, kind, w);
        let mixed_kind_parents: Vec<_> = mixed
            .parents
            .iter()
            .filter(|e| e.kind == kind)
            .copied()
            .collect();
        prop_assert_eq!(direct.parents, mixed_kind_parents);
    }
}
