//! Fig. 8: how soon after a DBE does its ECC page-retirement record
//! appear?
//!
//! The paper: "18 page retirement happens within 10 minutes of a DBE
//! occurrence, while only 1 event happened between 10 minutes and 6
//! hours. … Cases where ECC page retirement occurs much later after the
//! DBE occurrence … are likely caused by two SBEs happening in the same
//! page. We found that there were 17 instances when no ECC page
//! retirement happened between two successive DBEs."

use serde::{Deserialize, Serialize};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;

/// Ten minutes, the paper's prompt-bucket edge.
pub const PROMPT_EDGE_SECS: u64 = 600;
/// Six hours, the paper's delayed-bucket edge.
pub const DELAYED_EDGE_SECS: u64 = 6 * 3600;

/// The Fig. 8 distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetirementDelays {
    /// Retirements recorded within 10 minutes of the preceding DBE on the
    /// same node.
    pub within_10min: u64,
    /// Recorded between 10 minutes and 6 hours after it.
    pub min10_to_6h: u64,
    /// Recorded later than 6 hours after the preceding DBE (the paper
    /// attributes these to the two-SBE path).
    pub later: u64,
    /// Retirement records with *no* preceding DBE on that node at all —
    /// pure two-SBE retirements.
    pub no_preceding_dbe: u64,
    /// Successive same-node DBE pairs with no retirement record between
    /// them (the paper's 17 cases).
    pub dbe_pairs_without_retirement: u64,
    /// Raw delays in seconds (for ECDF rendering), one per retirement
    /// with a preceding DBE.
    pub delays: Vec<u64>,
}

impl RetirementDelays {
    /// Total retirement records examined.
    pub fn total_retirements(&self) -> u64 {
        self.within_10min + self.min10_to_6h + self.later + self.no_preceding_dbe
    }

    /// The paper's qualitative claim: the prompt bucket dominates the
    /// 10 min–6 h bucket.
    pub fn prompt_dominates(&self) -> bool {
        self.within_10min > self.min10_to_6h
    }
}

/// Computes the distribution with *fleet-wide* matching, following the
/// paper's framing: each retirement record is matched against the most
/// recent DBE anywhere on the machine ("the distribution of ECC page
/// retirement errors under different time intervals since the last
/// DBE"), and each pair of successive fleet DBEs is checked for an
/// intervening retirement record ("17 instances when no ECC page
/// retirement happened between two successive DBEs").
///
/// Only events at/after `since` participate — the paper restricts the
/// analysis to the post-Jan'14 period where XID 63 exists ("the DBE
/// occurrences happening only after the period Jan'2014 are accounted").
pub fn retirement_delays(events: &[ConsoleEvent], since: u64) -> RetirementDelays {
    let mut dbes: Vec<u64> = Vec::new();
    let mut rets: Vec<u64> = Vec::new();
    for ev in events.iter().filter(|e| e.time >= since) {
        match ev.kind {
            GpuErrorKind::DoubleBitError => dbes.push(ev.time),
            GpuErrorKind::EccPageRetirement => rets.push(ev.time),
            _ => {}
        }
    }
    dbes.sort_unstable();
    rets.sort_unstable();

    let mut out = RetirementDelays::default();

    // Classify each retirement by the latest DBE at or before it.
    for &rt in &rets {
        let i = dbes.partition_point(|&t| t <= rt);
        if i == 0 {
            out.no_preceding_dbe += 1;
            continue;
        }
        let delay = rt - dbes[i - 1];
        out.delays.push(delay);
        if delay < PROMPT_EDGE_SECS {
            out.within_10min += 1;
        } else if delay < DELAYED_EDGE_SECS {
            out.min10_to_6h += 1;
        } else {
            out.later += 1;
        }
    }

    // Successive DBE pairs with no retirement between them.
    for w in dbes.windows(2) {
        let i = rets.partition_point(|&t| t <= w[0]);
        let any_between = i < rets.len() && rets[i] <= w[1];
        if !any_between {
            out.dbe_pairs_without_retirement += 1;
        }
    }

    out.delays.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;

    fn ev(time: u64, node: u32, kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(node),
            kind,
            structure: None,
            page: None,
            apid: None,
        }
    }

    use GpuErrorKind::{DoubleBitError as DBE, EccPageRetirement as RET};

    #[test]
    fn prompt_and_delayed_buckets() {
        let events = vec![
            ev(1_000, 1, DBE),
            ev(1_100, 1, RET),   // +100 s: prompt
            ev(50_000, 1, DBE),
            ev(51_000, 1, RET),  // +1000 s: 10min–6h
            ev(200_000, 2, DBE),
            ev(300_000, 2, RET), // +100000 s: later
            ev(5, 3, RET),       // no preceding DBE
        ];
        let d = retirement_delays(&events, 0);
        assert_eq!(d.within_10min, 1);
        assert_eq!(d.min10_to_6h, 1);
        assert_eq!(d.later, 1);
        assert_eq!(d.no_preceding_dbe, 1);
        assert_eq!(d.total_retirements(), 4);
        assert_eq!(d.delays, vec![100, 1_000, 100_000]);
    }

    #[test]
    fn dbe_pairs_without_retirement_counted() {
        let events = vec![
            ev(0, 1, DBE),
            ev(100, 1, DBE),   // pair 1: nothing between
            ev(200, 1, RET),
            ev(300, 1, DBE),   // pair 2: RET at 200 between 100 and 300
            ev(1_000, 1, DBE), // pair 3: nothing between
        ];
        let d = retirement_delays(&events, 0);
        assert_eq!(d.dbe_pairs_without_retirement, 2);
    }

    #[test]
    fn matching_is_fleet_wide() {
        // A retirement on another node still matches the fleet's last
        // DBE — the paper's Fig. 8 is machine-level.
        let events = vec![
            ev(0, 1, DBE),
            ev(50, 2, RET), // different node, 50 s after the fleet DBE
        ];
        let d = retirement_delays(&events, 0);
        assert_eq!(d.no_preceding_dbe, 0);
        assert_eq!(d.within_10min, 1);
    }

    #[test]
    fn since_cutoff_applies() {
        let events = vec![ev(10, 1, DBE), ev(20, 1, RET)];
        let d = retirement_delays(&events, 1_000);
        assert_eq!(d.total_retirements(), 0);
        assert_eq!(d.dbe_pairs_without_retirement, 0);
    }

    #[test]
    fn prompt_dominates_predicate() {
        let mut d = RetirementDelays::default();
        d.within_10min = 18;
        d.min10_to_6h = 1;
        assert!(d.prompt_dominates());
    }
}
