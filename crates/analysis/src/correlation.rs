//! Figs. 16–19: correlating per-job SBE counts with resource utilization.
//!
//! §4: "Fig. 16, 17, 18, and 19 have been sorted by maximum memory
//! consumption, total memory consumption, number of nodes, and the GPU
//! core hours, respectively. … the values have been normalized to average
//! value of the respective metrics. … our second case excludes jobs that
//! used any of the top 10 SBE offender nodes."

// BTree maps, not hash maps: both are get-only here, but keeping hash
// containers out of the report pipeline keeps T1's hash-iteration
// source list empty (and iteration stays an option later).
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use titan_conlog::JobRecord;
use titan_nvsmi::{GpuSnapshot, JobEccDelta};
use titan_stats::{pearson, spearman, top_k_indices, CorrResult};
use titan_topology::NodeId;

/// The utilization metric a panel sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobMetric {
    /// Fig. 16: peak per-node GPU memory.
    MaxMemory,
    /// Fig. 17: integrated memory byte-hours.
    TotalMemory,
    /// Fig. 18: node count.
    Nodes,
    /// Fig. 19: GPU core-hours.
    GpuCoreHours,
}

impl JobMetric {
    /// All four panels in figure order.
    pub const ALL: [JobMetric; 4] = [
        JobMetric::MaxMemory,
        JobMetric::TotalMemory,
        JobMetric::Nodes,
        JobMetric::GpuCoreHours,
    ];

    /// Extracts the metric from a job record.
    ///
    /// "Total memory consumption" follows the paper's aggregate-footprint
    /// reading: the per-node peak summed over the allocation (bytes ×
    /// nodes), *not* integrated over time — integrating would make the
    /// metric a disguised node-hours count and trivially correlate with
    /// exposure.
    pub fn of(self, job: &JobRecord) -> f64 {
        match self {
            JobMetric::MaxMemory => job.max_memory_bytes as f64,
            JobMetric::TotalMemory => job.max_memory_bytes as f64 * job.node_count() as f64,
            JobMetric::Nodes => job.node_count() as f64,
            JobMetric::GpuCoreHours => job.gpu_core_hours,
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            JobMetric::MaxMemory => "max memory",
            JobMetric::TotalMemory => "total memory",
            JobMetric::Nodes => "number of nodes",
            JobMetric::GpuCoreHours => "GPU core hours",
        }
    }
}

/// One panel's data: jobs sorted by the metric, both series normalized to
/// their mean (the paper's presentation), plus the two coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedSeries {
    /// The sorting metric.
    pub metric: JobMetric,
    /// Normalized metric values, ascending.
    pub metric_norm: Vec<f64>,
    /// Normalized SBE counts, aligned with `metric_norm`.
    pub sbe_norm: Vec<f64>,
    /// Spearman rank correlation.
    pub spearman: Option<CorrResult>,
    /// Pearson correlation.
    pub pearson: Option<CorrResult>,
}

/// The full Figs. 16–19 study: every metric × {all jobs, offender-free}.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationStudy {
    /// Panels over all jobs.
    pub all_jobs: Vec<SortedSeries>,
    /// Panels excluding jobs that touched a top-10 offender node.
    pub excluding_top10: Vec<SortedSeries>,
    /// Jobs in the joined population.
    pub n_jobs: usize,
    /// Jobs dropped by the offender exclusion.
    pub n_excluded: usize,
    /// The top-10 offender nodes (from snapshots), for reporting.
    pub offender_nodes: Vec<NodeId>,
}

/// Joins job records with their SBE deltas and runs all panels.
///
/// `snapshots` provide the per-node lifetime SBE counts used to define
/// the "top 10 SBE offender nodes" exclusion, mirroring the paper.
pub fn job_sbe_correlations(
    jobs: &[JobRecord],
    deltas: &[JobEccDelta],
    snapshots: &[GpuSnapshot],
) -> CorrelationStudy {
    let sbe_by_apid: BTreeMap<u64, u64> =
        deltas.iter().map(|d| (d.apid, d.total_sbe())).collect();

    // Joined rows: (job, sbe).
    let rows: Vec<(&JobRecord, f64)> = jobs
        .iter()
        .filter_map(|j| sbe_by_apid.get(&j.apid).map(|&s| (j, s as f64)))
        .collect();

    // Offender nodes from snapshots.
    let node_sbe: Vec<f64> = snapshots.iter().map(|s| s.total_sbe() as f64).collect();
    let offender_nodes: Vec<NodeId> = top_k_indices(&node_sbe, 10)
        .into_iter()
        .filter(|&i| node_sbe[i] > 0.0)
        .map(|i| snapshots[i].node)
        .collect();
    let offender_set: BTreeSet<NodeId> = offender_nodes.iter().copied().collect();

    let clean_rows: Vec<(&JobRecord, f64)> = rows
        .iter()
        .filter(|(j, _)| !j.nodes.iter().any(|n| offender_set.contains(n)))
        .copied()
        .collect();

    let all_jobs = JobMetric::ALL
        .iter()
        .map(|&m| panel(&rows, m))
        .collect();
    let excluding_top10 = JobMetric::ALL
        .iter()
        .map(|&m| panel(&clean_rows, m))
        .collect();

    CorrelationStudy {
        all_jobs,
        excluding_top10,
        n_jobs: rows.len(),
        n_excluded: rows.len() - clean_rows.len(),
        offender_nodes,
    }
}

fn panel(rows: &[(&JobRecord, f64)], metric: JobMetric) -> SortedSeries {
    let mut pairs: Vec<(f64, f64)> = rows.iter().map(|(j, s)| (metric.of(j), *s)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let sp = spearman(&xs, &ys);
    let pe = pearson(&xs, &ys);
    SortedSeries {
        metric,
        metric_norm: normalize_to_mean(&xs),
        sbe_norm: normalize_to_mean(&ys),
        spearman: sp,
        pearson: pe,
    }
}

/// The paper's normalization: divide by the series mean (no-op for an
/// all-zero series).
pub fn normalize_to_mean(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return xs.to_vec();
    }
    xs.iter().map(|&x| x / mean).collect()
}

impl CorrelationStudy {
    /// Panel lookup by metric.
    pub fn panel(&self, metric: JobMetric, excluding: bool) -> Option<&SortedSeries> {
        let set = if excluding {
            &self.excluding_top10
        } else {
            &self.all_jobs
        };
        set.iter().find(|p| p.metric == metric)
    }

    /// Spearman coefficient for a metric (all-jobs case).
    pub fn spearman_of(&self, metric: JobMetric, excluding: bool) -> Option<f64> {
        self.panel(metric, excluding)?.spearman.map(|r| r.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard, MemoryStructure};

    fn job(apid: u64, nodes: &[u32], core_hours: f64, max_mem: u64) -> JobRecord {
        JobRecord {
            apid,
            user: 0,
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            start: 0,
            end: 3600,
            gpu_core_hours: core_hours,
            max_memory_bytes: max_mem,
            total_memory_byte_hours: max_mem as f64 * nodes.len() as f64,
        }
    }

    fn delta(apid: u64, sbe: u64) -> JobEccDelta {
        JobEccDelta {
            apid,
            per_node_sbe: vec![(NodeId(0), sbe)],
            per_structure_sbe: vec![sbe, 0, 0, 0, 0],
        }
    }

    fn snap(node: u32, sbe: u64) -> GpuSnapshot {
        let mut card = GpuCard::new(CardSerial(node));
        for _ in 0..sbe {
            card.apply_sbe(MemoryStructure::L2Cache, None, true);
        }
        GpuSnapshot::take(NodeId(node), &card, 0)
    }

    #[test]
    fn perfect_core_hour_correlation() {
        let jobs: Vec<JobRecord> = (0..30)
            .map(|i| job(i, &[i as u32], (i + 1) as f64, 1 << 20))
            .collect();
        let deltas: Vec<JobEccDelta> = (0..30).map(|i| delta(i, i + 1)).collect();
        let study = job_sbe_correlations(&jobs, &deltas, &[]);
        let r = study.spearman_of(JobMetric::GpuCoreHours, false).unwrap();
        assert!((r - 1.0).abs() < 1e-9, "{r}");
        assert_eq!(study.n_jobs, 30);
        assert_eq!(study.n_excluded, 0);
    }

    #[test]
    fn offender_exclusion_drops_jobs() {
        let jobs = vec![
            job(1, &[100], 1.0, 1),
            job(2, &[200], 2.0, 1),
            job(3, &[100, 300], 3.0, 1),
        ];
        let deltas = vec![delta(1, 50), delta(2, 1), delta(3, 60)];
        // Node 100 is the offender.
        let snaps = vec![snap(100, 500), snap(200, 1), snap(300, 0)];
        let study = job_sbe_correlations(&jobs, &deltas, &snaps);
        assert!(study.offender_nodes.contains(&NodeId(100)));
        // With fewer than 10 nonzero-SBE nodes, every one of them is a
        // "top-10 offender": nodes 100 and 200 both qualify, node 300
        // (zero SBEs) does not — so all three jobs are excluded except
        // none touch only node 300.
        assert!(study.offender_nodes.contains(&NodeId(200)));
        assert!(!study.offender_nodes.contains(&NodeId(300)));
        assert_eq!(study.n_excluded, 3);
    }

    #[test]
    fn join_skips_jobs_without_delta() {
        let jobs = vec![job(1, &[0], 1.0, 1), job(2, &[1], 2.0, 1)];
        let deltas = vec![delta(1, 5)];
        let study = job_sbe_correlations(&jobs, &deltas, &[]);
        assert_eq!(study.n_jobs, 1);
    }

    #[test]
    fn normalization_to_mean() {
        assert_eq!(normalize_to_mean(&[1.0, 3.0]), vec![0.5, 1.5]);
        assert_eq!(normalize_to_mean(&[]), Vec::<f64>::new());
        assert_eq!(normalize_to_mean(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn series_sorted_by_metric() {
        let jobs: Vec<JobRecord> = vec![
            job(1, &[0], 5.0, 10),
            job(2, &[1], 1.0, 30),
            job(3, &[2], 3.0, 20),
        ];
        let deltas: Vec<JobEccDelta> = vec![delta(1, 1), delta(2, 2), delta(3, 3)];
        let study = job_sbe_correlations(&jobs, &deltas, &[]);
        let p = study.panel(JobMetric::GpuCoreHours, false).unwrap();
        assert!(p.metric_norm.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.metric_norm.len(), 3);
        // Mean-normalized: average must be 1.
        let avg: f64 = p.metric_norm.iter().sum::<f64>() / 3.0;
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let study = job_sbe_correlations(&[], &[], &[]);
        assert_eq!(study.n_jobs, 0);
        assert!(study.spearman_of(JobMetric::Nodes, false).is_none());
    }
}
