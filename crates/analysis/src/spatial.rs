//! Spatial distributions: the 25 × 8 cabinet grids and per-cage tallies
//! of Figs. 3, 5, 7 and the three-way filtered view of Fig. 12.

use serde::{Deserialize, Serialize};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;
use titan_topology::grid::CageTally;
use titan_topology::CabinetGrid;

use crate::filtering::{dedup_job_level, of_kind};

/// Cabinet grid of event counts for one kind. `distinct_nodes` counts
/// each node once (the paper's "distinct GPU cards" view — at console-log
/// granularity a card is identified by its slot).
pub fn spatial_grid(events: &[ConsoleEvent], kind: GpuErrorKind, distinct_nodes: bool) -> CabinetGrid {
    let mut grid = CabinetGrid::new();
    if distinct_nodes {
        let mut seen = std::collections::BTreeSet::new();
        for ev in events.iter().filter(|e| e.kind == kind) {
            if seen.insert(ev.node) {
                grid.add_node(ev.node, 1.0);
            }
        }
    } else {
        for ev in events.iter().filter(|e| e.kind == kind) {
            grid.add_node(ev.node, 1.0);
        }
    }
    grid
}

/// Per-cage tally for one kind (Figs. 3(b), 5, 7): total events and
/// distinct nodes per cage.
pub fn cage_tally(events: &[ConsoleEvent], kind: GpuErrorKind) -> (CageTally, CageTally) {
    let mut totals = CageTally::default();
    let mut distinct = CageTally::default();
    let mut seen = std::collections::BTreeSet::new();
    for ev in events.iter().filter(|e| e.kind == kind) {
        totals.add_node(ev.node, 1.0);
        if seen.insert(ev.node) {
            distinct.add_node(ev.node, 1.0);
        }
    }
    (totals, distinct)
}

/// The three panels of Fig. 12 for an application XID.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialFiltering {
    /// Top panel: no filtering — every report on every node.
    pub unfiltered: CabinetGrid,
    /// Middle panel: 5 s-filtered — one event per incident.
    pub filtered: CabinetGrid,
    /// Bottom panel: only the events *removed* by the filter (the
    /// children inside the 5 s window).
    pub children: CabinetGrid,
}

impl SpatialFiltering {
    /// Even-column bias of each panel: the paper's observation is that
    /// the unfiltered and children panels stripe (bias far from 1) while
    /// the filtered panel does not stripe as strongly.
    pub fn stripe_biases(&self) -> (f64, f64, f64) {
        (
            self.unfiltered.even_column_bias().unwrap_or(1.0),
            self.filtered.even_column_bias().unwrap_or(1.0),
            self.children.even_column_bias().unwrap_or(1.0),
        )
    }
}

/// Per-incident striping statistic for Fig. 12's claim.
///
/// The aggregate even/odd column contrast of a whole panel is *biased
/// toward zero*: the torus cabling fold gives every job one of two
/// column parities (outbound jobs stripe 0/2/4/6, return-run jobs
/// stripe 7/5/3/1 — see `Torus::physical_col_of_y`), so two comparable
/// incidents of opposite parity cancel each other in the summed grid
/// even though each one stripes perfectly. The paper's observation is
/// about structure *within* one incident's footprint ("nodes within the
/// same job [are] allocated in this alternating manner"), so the honest
/// estimator scores each incident's own footprint and averages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncidentStripe {
    /// Event-weighted mean of per-incident `|even − odd| / total`
    /// column contrast. Near 1 when incident footprints hold one
    /// column parity; near `null` for parity-blind placement.
    pub contrast: f64,
    /// Size-matched uniform null: the same weighted mean of
    /// `sqrt(2 / (π·nᵢ))` — the expected contrast of `nᵢ` events
    /// thrown uniformly over the cabinet columns.
    pub null: f64,
    /// Number of incidents scored.
    pub incidents: u64,
}

/// Groups time-sorted `kind` events into incidents with the same rule as
/// [`dedup_job_level`] (a parent plus everything within `window_secs` of
/// the last kept parent) and scores each incident's footprint. `None`
/// when no events of `kind` exist.
pub fn incident_stripe(
    events: &[ConsoleEvent],
    kind: GpuErrorKind,
    window_secs: u64,
) -> Option<IncidentStripe> {
    let mut weighted_contrast = 0.0;
    let mut weighted_null = 0.0;
    let mut total_events = 0.0;
    let mut incidents = 0u64;
    let mut current: Vec<ConsoleEvent> = Vec::new();
    let mut last_kept: Option<u64> = None;
    let mut flush = |batch: &mut Vec<ConsoleEvent>| {
        if batch.is_empty() {
            return;
        }
        let grid = spatial_grid(batch, kind, false);
        if let Some(c) = grid.stripe_contrast() {
            let n = batch.len() as f64;
            weighted_contrast += n * c;
            weighted_null += n * (2.0 / (std::f64::consts::PI * n)).sqrt().min(1.0);
            total_events += n;
            incidents += 1;
        }
        batch.clear();
    };
    for ev in events.iter().filter(|e| e.kind == kind) {
        match last_kept {
            Some(t) if ev.time.saturating_sub(t) < window_secs => {}
            _ => {
                flush(&mut current);
                last_kept = Some(ev.time);
            }
        }
        current.push(*ev);
    }
    flush(&mut current);
    if total_events == 0.0 {
        return None;
    }
    Some(IncidentStripe {
        contrast: weighted_contrast / total_events,
        null: weighted_null / total_events,
        incidents,
    })
}

/// Builds Fig. 12 for `kind` with the paper's 5-second window.
pub fn spatial_with_filtering(events: &[ConsoleEvent], kind: GpuErrorKind) -> SpatialFiltering {
    spatial_with_filtering_window(events, kind, 5)
}

/// [`spatial_with_filtering`] with an explicit window (the ablation bench
/// sweeps this).
pub fn spatial_with_filtering_window(
    events: &[ConsoleEvent],
    kind: GpuErrorKind,
    window_secs: u64,
) -> SpatialFiltering {
    let only = of_kind(events, kind);
    let unfiltered = spatial_grid(&only, kind, false);
    let outcome = dedup_job_level(&only, kind, window_secs);
    let filtered = spatial_grid(&outcome.parents, kind, false);
    let children = spatial_grid(&outcome.children, kind, false);
    SpatialFiltering {
        unfiltered,
        filtered,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::{Location, NodeId};

    fn node_at(row: u8, col: u8, cage: u8) -> NodeId {
        Location {
            row,
            col,
            cage,
            blade: 0,
            node: 0,
        }
        .node_id()
    }

    fn ev(time: u64, node: NodeId, kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node,
            kind,
            structure: None,
            page: None,
            apid: None,
        }
    }

    #[test]
    fn grid_counts_and_distinct() {
        use GpuErrorKind::DoubleBitError as DBE;
        let n = node_at(3, 2, 1);
        let events = vec![ev(0, n, DBE), ev(10_000, n, DBE)];
        let total = spatial_grid(&events, DBE, false);
        let distinct = spatial_grid(&events, DBE, true);
        assert_eq!(total.get(3, 2), 2.0);
        assert_eq!(distinct.get(3, 2), 1.0);
    }

    #[test]
    fn cage_tally_counts() {
        use GpuErrorKind::OffTheBus as OTB;
        let top = node_at(0, 0, 2);
        let bottom = node_at(0, 0, 0);
        let events = vec![ev(0, top, OTB), ev(1, top, OTB), ev(2, bottom, OTB)];
        let (totals, distinct) = cage_tally(&events, OTB);
        assert_eq!(totals.by_cage, [1.0, 0.0, 2.0]);
        assert_eq!(distinct.by_cage, [1.0, 0.0, 1.0]);
        assert!(totals.top_heavy());
    }

    #[test]
    fn fig12_filtering_splits_stripes() {
        use GpuErrorKind::GraphicsEngineException as X13;
        // One incident spread across even columns within 5 s (the job's
        // striped allocation), then a lone later incident on an odd column.
        let events = vec![
            ev(100, node_at(0, 0, 0), X13),
            ev(101, node_at(0, 2, 0), X13),
            ev(102, node_at(0, 4, 0), X13),
            ev(103, node_at(0, 6, 0), X13),
            ev(1_000, node_at(5, 1, 0), X13),
        ];
        let f = spatial_with_filtering(&events, X13);
        assert_eq!(f.unfiltered.total(), 5.0);
        assert_eq!(f.filtered.total(), 2.0);
        assert_eq!(f.children.total(), 3.0);
        let (un, _fi, ch) = f.stripe_biases();
        // Unfiltered and children lean even; the filter keeps one event
        // per incident so its panel is much less striped.
        assert!(un > 1.5, "unfiltered bias {un}");
        assert!(ch > 1.9, "children bias {ch}");
    }

    #[test]
    fn empty_events_empty_panels() {
        use GpuErrorKind::GraphicsEngineException as X13;
        let f = spatial_with_filtering(&[], X13);
        assert_eq!(f.unfiltered.total(), 0.0);
        assert_eq!(f.stripe_biases(), (1.0, 1.0, 1.0));
    }

    #[test]
    fn opposite_parity_incidents_cancel_globally_but_not_per_incident() {
        use GpuErrorKind::GraphicsEngineException as X13;
        // Two equal-size incidents: an outbound-run job striped on even
        // columns and a return-run job striped on odd columns. Their
        // aggregate column profile is flat — the global even/odd contrast
        // is exactly 0 — yet each footprint stripes perfectly.
        let mut events = Vec::new();
        for (i, c) in [0u8, 2, 4, 6].into_iter().enumerate() {
            events.push(ev(100 + i as u64, node_at(0, c, 0), X13));
        }
        for (i, c) in [7u8, 5, 3, 1].into_iter().enumerate() {
            events.push(ev(10_000 + i as u64, node_at(0, c, 0), X13));
        }
        let panel = spatial_grid(&events, X13, false);
        assert_eq!(panel.stripe_contrast(), Some(0.0), "global stat cancels");
        let s = incident_stripe(&events, X13, 5).expect("two incidents");
        assert_eq!(s.incidents, 2);
        assert!((s.contrast - 1.0).abs() < 1e-12, "per-incident contrast {}", s.contrast);
        // Size-matched null for 4-event incidents: sqrt(2/(4π)) ≈ 0.4.
        assert!(s.null < 0.5, "null {}", s.null);
        // No events of the kind → no statistic.
        assert!(incident_stripe(&[], X13, 5).is_none());
    }
}
