//! Monthly frequency series — the x-axis of Figs. 2, 4, 6, 9, 10, 11 —
//! plus the MTBF and burstiness statistics quoted in Observations 1 & 6.

use serde::{Deserialize, Serialize};
use titan_conlog::time::{StudyCalendar, STUDY_MONTHS};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;

/// A monthly count series over the study window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthlySeries {
    /// Event kind counted.
    pub kind: GpuErrorKind,
    /// Counts per study month (index 0 = Jun'13).
    pub counts: Vec<u64>,
    /// Month labels aligned with `counts`.
    pub labels: Vec<String>,
}

impl MonthlySeries {
    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the peak month, or `None` when empty.
    pub fn peak_month(&self) -> Option<usize> {
        if self.total() == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Count in the months strictly before study month `m`.
    pub fn total_before(&self, m: usize) -> u64 {
        self.counts[..m.min(self.counts.len())].iter().sum()
    }

    /// Count in the months at/after study month `m`.
    pub fn total_from(&self, m: usize) -> u64 {
        self.counts[m.min(self.counts.len())..].iter().sum()
    }
}

/// Builds the monthly series for `kind` from (already filtered) events.
pub fn monthly_counts(events: &[ConsoleEvent], kind: GpuErrorKind) -> MonthlySeries {
    let cal = StudyCalendar;
    let mut counts = vec![0u64; STUDY_MONTHS];
    for ev in events.iter().filter(|e| e.kind == kind) {
        counts[cal.month_index(ev.time)] += 1;
    }
    MonthlySeries {
        kind,
        counts,
        labels: cal.month_labels(),
    }
}

/// MTBF in hours for `kind` over the events (Observation 1's ≈160 h for
/// DBEs). `None` with fewer than two events.
pub fn mtbf_hours(events: &[ConsoleEvent], kind: GpuErrorKind) -> Option<f64> {
    let ts: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.time)
        .collect();
    titan_stats::mtbf_hours(&ts)
}

/// Burstiness index for `kind` (Observation 6: application XIDs bursty,
/// driver XIDs not).
pub fn burstiness(events: &[ConsoleEvent], kind: GpuErrorKind) -> Option<f64> {
    let ts: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.time)
        .collect();
    titan_stats::burstiness(&ts)
}

/// Daily-count Fano factor for `kind` — the second burstiness lens.
pub fn daily_fano(events: &[ConsoleEvent], kind: GpuErrorKind) -> Option<f64> {
    let ts: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.time)
        .collect();
    titan_stats::estimators::fano_factor(&ts, 86_400)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_conlog::time::StudyCalendar;
    use titan_topology::NodeId;

    fn ev(time: u64, kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(0),
            kind,
            structure: None,
            page: None,
            apid: None,
        }
    }

    #[test]
    fn monthly_binning() {
        let cal = StudyCalendar;
        let dec13 = cal.date(2013, 12, 15).unwrap();
        let jan14 = cal.date(2014, 1, 2).unwrap();
        let events = vec![
            ev(0, GpuErrorKind::DoubleBitError),
            ev(dec13, GpuErrorKind::DoubleBitError),
            ev(jan14, GpuErrorKind::DoubleBitError),
            ev(jan14, GpuErrorKind::OffTheBus), // other kind ignored
        ];
        let s = monthly_counts(&events, GpuErrorKind::DoubleBitError);
        assert_eq!(s.total(), 3);
        assert_eq!(s.counts[0], 1); // Jun'13
        assert_eq!(s.counts[6], 1); // Dec'13
        assert_eq!(s.counts[7], 1); // Jan'14
        assert_eq!(s.labels[7], "Jan'14");
        assert_eq!(s.total_before(7), 2);
        assert_eq!(s.total_from(7), 1);
    }

    #[test]
    fn peak_month() {
        let events: Vec<ConsoleEvent> = (0..5)
            .map(|i| ev(100 + i, GpuErrorKind::OffTheBus))
            .collect();
        let s = monthly_counts(&events, GpuErrorKind::OffTheBus);
        assert_eq!(s.peak_month(), Some(0));
        let empty = monthly_counts(&[], GpuErrorKind::OffTheBus);
        assert_eq!(empty.peak_month(), None);
    }

    #[test]
    fn mtbf_weekly() {
        let week = 7 * 24 * 3600;
        let events: Vec<ConsoleEvent> = (0..10u64)
            .map(|i| ev(i * week, GpuErrorKind::DoubleBitError))
            .collect();
        let m = mtbf_hours(&events, GpuErrorKind::DoubleBitError).unwrap();
        assert!((m - 168.0).abs() < 1e-9);
        assert!(mtbf_hours(&events, GpuErrorKind::OffTheBus).is_none());
    }

    #[test]
    fn burstiness_separates_shapes() {
        // Bursty: 10 clusters of 20.
        let mut bursty = Vec::new();
        for c in 0..10u64 {
            for k in 0..20u64 {
                bursty.push(ev(c * 1_000_000 + k, GpuErrorKind::GraphicsEngineException));
            }
        }
        // Regular: every hour.
        let regular: Vec<ConsoleEvent> = (0..200u64)
            .map(|i| ev(i * 3600, GpuErrorKind::GpuStoppedProcessing))
            .collect();
        let all: Vec<ConsoleEvent> = bursty.iter().chain(&regular).copied().collect();
        let b13 = burstiness(&all, GpuErrorKind::GraphicsEngineException).unwrap();
        let b43 = burstiness(&all, GpuErrorKind::GpuStoppedProcessing).unwrap();
        assert!(b13 > 0.5, "{b13}");
        assert!(b43 < -0.9, "{b43}");
        let f13 = daily_fano(&all, GpuErrorKind::GraphicsEngineException).unwrap();
        assert!(f13 > 5.0, "{f13}");
    }
}
