//! Thermal survey from nvidia-smi snapshots.
//!
//! The paper derives its temperature claim from the tool, not from
//! facility sensors: "the GPUs in the uppermost cage are on an average
//! more than 10 °F hotter than the GPUs in the lowermost cage, as per a
//! snapshot taken by the nvidia-smi utility." This module reproduces
//! that derivation: aggregate snapshot temperatures by cage and compare.

use serde::{Deserialize, Serialize};
use titan_nvsmi::GpuSnapshot;

/// Cage-level temperature summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSurvey {
    /// Mean GPU temperature per cage, bottom → top, °F.
    pub mean_by_cage: [f64; 3],
    /// GPUs sampled per cage.
    pub count_by_cage: [u64; 3],
    /// Top-minus-bottom mean difference, °F (the paper's ">10 °F").
    pub top_bottom_delta_f: f64,
    /// Hottest single GPU observed, °F.
    pub max_f: f64,
    /// Coolest single GPU observed, °F.
    pub min_f: f64,
}

/// Aggregates snapshot temperatures by cage.
pub fn thermal_survey(snapshots: &[GpuSnapshot]) -> ThermalSurvey {
    let mut sum = [0.0f64; 3];
    let mut count = [0u64; 3];
    let mut max_f = f64::NEG_INFINITY;
    let mut min_f = f64::INFINITY;
    for s in snapshots {
        let cage = s.node.location().cage as usize;
        sum[cage] += s.temperature_f;
        count[cage] += 1;
        max_f = max_f.max(s.temperature_f);
        min_f = min_f.min(s.temperature_f);
    }
    let mean = |i: usize| {
        if count[i] == 0 {
            f64::NAN
        } else {
            sum[i] / count[i] as f64
        }
    };
    let mean_by_cage = [mean(0), mean(1), mean(2)];
    ThermalSurvey {
        mean_by_cage,
        count_by_cage: count,
        top_bottom_delta_f: mean_by_cage[2] - mean_by_cage[0],
        max_f,
        min_f,
    }
}

impl ThermalSurvey {
    /// The paper's claim: top cage more than 10 °F hotter than bottom.
    pub fn matches_paper(&self) -> bool {
        self.top_bottom_delta_f > 10.0
    }

    /// Monotone gradient bottom → top.
    pub fn monotone(&self) -> bool {
        self.mean_by_cage[0] < self.mean_by_cage[1]
            && self.mean_by_cage[1] < self.mean_by_cage[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard};
    use titan_topology::{Location, NodeId};

    fn snap(cage: u8, blade: u8) -> GpuSnapshot {
        let node: NodeId = Location {
            row: 5,
            col: 3,
            cage,
            blade,
            node: 1,
        }
        .node_id();
        GpuSnapshot::take(node, &GpuCard::new(CardSerial(node.0)), 0)
    }

    #[test]
    fn survey_reproduces_cage_gradient() {
        let mut snaps = Vec::new();
        for cage in 0..3u8 {
            for blade in 0..8u8 {
                snaps.push(snap(cage, blade));
            }
        }
        let t = thermal_survey(&snaps);
        assert_eq!(t.count_by_cage, [8, 8, 8]);
        assert!(t.monotone(), "{:?}", t.mean_by_cage);
        assert!(t.matches_paper(), "delta {}", t.top_bottom_delta_f);
        assert!(t.max_f > t.min_f);
    }

    #[test]
    fn empty_survey_is_nan() {
        let t = thermal_survey(&[]);
        assert!(t.mean_by_cage[0].is_nan());
        assert!(!t.matches_paper());
    }
}
