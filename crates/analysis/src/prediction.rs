//! Precursor-based failure prediction — Observation 9 operationalized:
//!
//! > "Doing correlation analysis between different types of errors help
//! > us understand which errors are more likely to be followed by
//! > another type of error … Some of these studies also propose to
//! > exploit the correlation among failures to alert/trigger events for
//! > failure prediction."
//!
//! The predictor learns the parent→child co-occurrence structure
//! (Fig. 13) on a training prefix of the console log, then, on the
//! evaluation suffix, raises an alarm after any event whose learned
//! probability of being followed by a *crash-class* event within the
//! horizon exceeds a threshold. Standard precision/recall scoring.

// BTreeMap, not HashMap: these maps are serialized into the report,
// so iteration/field order must not depend on the process hash seed.
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;

/// Horizon within which a predicted follow-up failure must land.
pub const DEFAULT_HORIZON_SECS: u64 = 300;

/// A trained precursor model: P(crash-class follow-up within horizon |
/// precursor kind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecursorModel {
    /// Learned probabilities per precursor kind.
    pub follow_prob: BTreeMap<GpuErrorKind, f64>,
    /// Precursor sample counts (for confidence).
    pub support: BTreeMap<GpuErrorKind, u64>,
    /// Horizon used, seconds.
    pub horizon: u64,
}

/// Whether an event terminates work — the target class for prediction.
fn is_crash_class(kind: GpuErrorKind) -> bool {
    kind.crashes_application() && kind != GpuErrorKind::EccPageRetirement
}

/// Trains the model on a time-sorted event slice. For every event, we
/// look ahead `horizon` seconds for a crash-class event on the same node
/// or the same job.
pub fn train(events: &[ConsoleEvent], horizon: u64) -> PrecursorModel {
    let mut followed: BTreeMap<GpuErrorKind, u64> = BTreeMap::new();
    let mut support: BTreeMap<GpuErrorKind, u64> = BTreeMap::new();
    for (i, prev) in events.iter().enumerate() {
        *support.entry(prev.kind).or_default() += 1;
        let mut hit = false;
        for follow in events[i + 1..].iter() {
            if follow.time.saturating_sub(prev.time) > horizon {
                break;
            }
            let related =
                follow.node == prev.node || (follow.apid.is_some() && follow.apid == prev.apid);
            if related && is_crash_class(follow.kind) {
                hit = true;
                break;
            }
        }
        if hit {
            *followed.entry(prev.kind).or_default() += 1;
        }
    }
    let follow_prob = support
        .iter()
        .map(|(&k, &n)| {
            let f = followed.get(&k).copied().unwrap_or(0);
            (k, f as f64 / n as f64)
        })
        .collect();
    PrecursorModel {
        follow_prob,
        support,
        horizon,
    }
}

/// Prediction quality on an evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionScore {
    /// Alarms raised.
    pub alarms: u64,
    /// Alarms followed by a crash-class event within the horizon.
    pub true_positives: u64,
    /// Crash-class events (on alarmed scopes or not).
    pub crashes: u64,
    /// Crash-class events preceded by an alarm within the horizon.
    pub caught: u64,
    /// true_positives / alarms.
    pub precision: f64,
    /// caught / crashes.
    pub recall: f64,
}

/// Evaluates the model on a time-sorted event slice: raise an alarm on
/// every event whose learned follow probability ≥ `threshold`.
pub fn evaluate(
    model: &PrecursorModel,
    events: &[ConsoleEvent],
    threshold: f64,
) -> PredictionScore {
    let horizon = model.horizon;
    let alarm_on = |k: GpuErrorKind| {
        model.follow_prob.get(&k).copied().unwrap_or(0.0) >= threshold
            && model.support.get(&k).copied().unwrap_or(0) >= 5
    };

    let mut alarms = 0u64;
    let mut true_positives = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if !alarm_on(ev.kind) {
            continue;
        }
        alarms += 1;
        let hit = events[i + 1..]
            .iter()
            .take_while(|f| f.time.saturating_sub(ev.time) <= horizon)
            .any(|f| {
                (f.node == ev.node || (f.apid.is_some() && f.apid == ev.apid))
                    && is_crash_class(f.kind)
            });
        if hit {
            true_positives += 1;
        }
    }

    let mut crashes = 0u64;
    let mut caught = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if !is_crash_class(ev.kind) {
            continue;
        }
        crashes += 1;
        // Any alarm in the preceding horizon on the same node/job?
        let preceded = events[..i]
            .iter()
            .rev()
            .take_while(|p| ev.time.saturating_sub(p.time) <= horizon)
            .any(|p| {
                alarm_on(p.kind)
                    && (p.node == ev.node || (p.apid.is_some() && p.apid == ev.apid))
            });
        if preceded {
            caught += 1;
        }
    }

    PredictionScore {
        alarms,
        true_positives,
        crashes,
        caught,
        precision: if alarms == 0 {
            0.0
        } else {
            true_positives as f64 / alarms as f64
        },
        recall: if crashes == 0 {
            0.0
        } else {
            caught as f64 / crashes as f64
        },
    }
}

/// Convenience: split a log at `split_time`, train on the prefix, score
/// the suffix.
pub fn train_and_evaluate(
    events: &[ConsoleEvent],
    split_time: u64,
    horizon: u64,
    threshold: f64,
) -> (PrecursorModel, PredictionScore) {
    let split = events.partition_point(|e| e.time < split_time);
    let model = train(&events[..split], horizon);
    let score = evaluate(&model, &events[split..], threshold);
    (model, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;
    use GpuErrorKind::*;

    fn ev(time: u64, node: u32, kind: GpuErrorKind, apid: Option<u64>) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(node),
            kind,
            structure: None,
            page: None,
            apid,
        }
    }

    /// A synthetic log where XID 13 reliably precedes XID 43 (crash) and
    /// retirement records precede nothing.
    fn synthetic(n: u64, offset: u64) -> Vec<ConsoleEvent> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = offset + i * 10_000;
            out.push(ev(t, (i % 100) as u32, GraphicsEngineException, Some(i)));
            out.push(ev(t + 60, (i % 100) as u32, GpuStoppedProcessing, Some(i)));
            out.push(ev(t + 5_000, 500 + (i % 50) as u32, EccPageRetirement, None));
        }
        out
    }

    #[test]
    fn learns_strong_precursor() {
        let model = train(&synthetic(200, 0), DEFAULT_HORIZON_SECS);
        let p13 = model.follow_prob[&GraphicsEngineException];
        assert!(p13 > 0.95, "{p13}");
        let p63 = model.follow_prob[&EccPageRetirement];
        assert!(p63 < 0.05, "{p63}");
    }

    #[test]
    fn prediction_scores_high_on_stationary_process() {
        let events = synthetic(400, 0);
        let (model, score) = train_and_evaluate(&events, 2_000_000, DEFAULT_HORIZON_SECS, 0.5);
        assert!(model.support[&GraphicsEngineException] >= 5);
        assert!(score.alarms > 0);
        assert!(score.precision > 0.9, "precision {}", score.precision);
        // XID 43 events are all caught (their XID 13 precursor alarms);
        // XID 13 itself is crash-class but has no precursor -> recall is
        // the caught share among all crash-class events.
        assert!(score.recall > 0.3, "recall {}", score.recall);
    }

    #[test]
    fn threshold_one_disables_alarms() {
        let events = synthetic(100, 0);
        let (_, score) = train_and_evaluate(&events, 500_000, DEFAULT_HORIZON_SECS, 1.1);
        assert_eq!(score.alarms, 0);
        assert_eq!(score.precision, 0.0);
    }

    #[test]
    fn low_support_kinds_do_not_alarm() {
        // A kind seen fewer than 5 times in training never alarms even
        // with probability 1.
        let mut events = vec![
            ev(0, 1, DriverFirmware, None),
            ev(10, 1, GpuStoppedProcessing, None),
        ];
        events.extend(synthetic(50, 1_000_000));
        let model = train(&events[..2], DEFAULT_HORIZON_SECS);
        let score = evaluate(&model, &events[2..], 0.5);
        // DriverFirmware had support 1 -> no alarms from it.
        assert_eq!(score.alarms, 0);
    }

    #[test]
    fn empty_inputs() {
        let model = train(&[], DEFAULT_HORIZON_SECS);
        assert!(model.follow_prob.is_empty());
        let score = evaluate(&model, &[], 0.5);
        assert_eq!(score.alarms, 0);
        assert_eq!(score.crashes, 0);
    }
}
