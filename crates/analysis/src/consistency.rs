//! Observation 2: cross-checking console-log DBE counts against
//! nvidia-smi.
//!
//! "Unfortunately, the counts do not match exactly. Nvidia-smi output
//! reports fewer number of DBEs than our console log filtering method. …
//! Nvidia-smi reports a greater number of double bit errors than single
//! bit errors for some cards during the same time-period."

use serde::{Deserialize, Serialize};
use titan_conlog::ConsoleEvent;
use titan_gpu::{GpuErrorKind, MemoryStructure};
use titan_nvsmi::GpuSnapshot;

/// The accounting comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbeAccounting {
    /// DBE events in the console log.
    pub console_dbe: u64,
    /// Total aggregate DBEs across the fleet's nvidia-smi snapshots.
    pub nvsmi_dbe: u64,
    /// Cards reporting more DBEs than SBEs (the logging inconsistency).
    pub cards_dbe_exceeds_sbe: usize,
    /// Console DBE count by structure (the Fig. 3(c) breakdown, which the
    /// paper trusts over nvidia-smi).
    pub console_by_structure: Vec<(MemoryStructure, u64)>,
    /// Device-memory share of console DBEs (paper: 86%).
    pub device_memory_fraction: f64,
}

impl DbeAccounting {
    /// The Observation 2 signature: the snapshot count undershoots the
    /// console count.
    pub fn nvsmi_undercounts(&self) -> bool {
        self.nvsmi_dbe < self.console_dbe
    }
}

/// Runs the accounting comparison.
pub fn dbe_accounting(events: &[ConsoleEvent], snapshots: &[GpuSnapshot]) -> DbeAccounting {
    let dbe_events: Vec<&ConsoleEvent> = events
        .iter()
        .filter(|e| e.kind == GpuErrorKind::DoubleBitError)
        .collect();
    let console_dbe = dbe_events.len() as u64;

    // BTreeMap, not HashMap: with a count-only stable sort below,
    // equal-count structures would otherwise surface in hash-iteration
    // order and leak process identity into the report (T1).
    let mut by_structure: std::collections::BTreeMap<MemoryStructure, u64> = Default::default();
    for e in &dbe_events {
        if let Some(s) = e.structure {
            *by_structure.entry(s).or_default() += 1;
        }
    }
    let mut console_by_structure: Vec<(MemoryStructure, u64)> =
        by_structure.into_iter().collect();
    console_by_structure.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));

    let with_structure: u64 = console_by_structure.iter().map(|&(_, c)| c).sum();
    let dm = console_by_structure
        .iter()
        .find(|&&(s, _)| s == MemoryStructure::DeviceMemory)
        .map_or(0, |&(_, c)| c);
    let device_memory_fraction = if with_structure == 0 {
        0.0
    } else {
        dm as f64 / with_structure as f64
    };

    let nvsmi_dbe: u64 = snapshots.iter().map(|s| s.total_dbe()).sum();
    let cards_dbe_exceeds_sbe = snapshots
        .iter()
        .filter(|s| s.total_dbe() > 0 && s.dbe_exceeds_sbe())
        .count();

    DbeAccounting {
        console_dbe,
        nvsmi_dbe,
        cards_dbe_exceeds_sbe,
        console_by_structure,
        device_memory_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard};
    use titan_topology::NodeId;

    fn dbe_ev(time: u64, structure: MemoryStructure) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(0),
            kind: GpuErrorKind::DoubleBitError,
            structure: Some(structure),
            page: None,
            apid: None,
        }
    }

    #[test]
    fn undercount_detected() {
        let events = vec![
            dbe_ev(0, MemoryStructure::DeviceMemory),
            dbe_ev(1, MemoryStructure::DeviceMemory),
            dbe_ev(2, MemoryStructure::RegisterFile),
        ];
        // Snapshot fleet persisted only one DBE.
        let mut card = GpuCard::new(CardSerial(0));
        card.apply_dbe(MemoryStructure::DeviceMemory, None, true, true);
        card.apply_dbe(MemoryStructure::DeviceMemory, None, false, true);
        let snaps = vec![GpuSnapshot::take(NodeId(0), &card, 0)];
        let acc = dbe_accounting(&events, &snaps);
        assert_eq!(acc.console_dbe, 3);
        assert_eq!(acc.nvsmi_dbe, 1);
        assert!(acc.nvsmi_undercounts());
        assert!((acc.device_memory_fraction - 2.0 / 3.0).abs() < 1e-12);
        // That card has DBE(1) > SBE(0).
        assert_eq!(acc.cards_dbe_exceeds_sbe, 1);
    }

    #[test]
    fn structure_breakdown_ordering() {
        let events = vec![
            dbe_ev(0, MemoryStructure::DeviceMemory),
            dbe_ev(1, MemoryStructure::DeviceMemory),
            dbe_ev(2, MemoryStructure::RegisterFile),
        ];
        let acc = dbe_accounting(&events, &[]);
        assert_eq!(acc.console_by_structure[0].0, MemoryStructure::DeviceMemory);
        assert_eq!(acc.console_by_structure[0].1, 2);
    }

    #[test]
    fn empty_inputs() {
        let acc = dbe_accounting(&[], &[]);
        assert_eq!(acc.console_dbe, 0);
        assert_eq!(acc.nvsmi_dbe, 0);
        assert!(!acc.nvsmi_undercounts());
        assert_eq!(acc.device_memory_fraction, 0.0);
    }
}
