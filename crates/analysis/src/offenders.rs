//! Figs. 14 & 15: the SBE offender analysis.
//!
//! Observation 10: "Single bit errors show a highly skewed distribution
//! on the Titan supercomputer. However, when 50 top SBE offending nodes
//! are removed, the distribution becomes relatively homogeneous in space.
//! … It appears that some cards are inherently more prone to SBEs rather
//! than due to their location."
//!
//! Input is the end-of-study nvidia-smi snapshots — the only source of
//! SBE counts, exactly as in the paper.

use serde::{Deserialize, Serialize};
use titan_nvsmi::GpuSnapshot;
use titan_stats::{top_k_indices, Ecdf};
use titan_topology::grid::CageTally;
use titan_topology::CabinetGrid;

/// One exclusion level of the Fig. 14/15 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExclusionLevel {
    /// How many top offenders were removed.
    pub removed: usize,
    /// Cabinet grid of SBE counts.
    pub grid: CabinetGrid,
    /// Spatial coefficient of variation (skew proxy; falls as offenders
    /// are removed).
    pub spatial_cv: f64,
    /// Per-cage SBE totals.
    pub cage_totals: CageTally,
    /// Per-cage distinct cards with ≥1 SBE.
    pub cage_distinct: CageTally,
}

/// The full offender analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffenderAnalysis {
    /// Levels: top-0, top-10, top-50 removed.
    pub levels: Vec<ExclusionLevel>,
    /// Cards that ever saw an SBE.
    pub cards_with_sbe: usize,
    /// Fraction of the fleet that ever saw an SBE (paper: < 5%).
    pub affected_fraction: f64,
    /// Share of all SBEs on the top-10 cards.
    pub top10_share: f64,
    /// Share of all SBEs on the top-50 cards.
    pub top50_share: f64,
    /// Gini coefficient of per-card SBE counts among all cards.
    pub gini: f64,
}

/// The paper's exclusion levels.
pub const EXCLUSION_LEVELS: [usize; 3] = [0, 10, 50];

/// Runs the Fig. 14/15 analysis over final fleet snapshots.
pub fn sbe_offender_analysis(snapshots: &[GpuSnapshot]) -> OffenderAnalysis {
    let counts: Vec<f64> = snapshots.iter().map(|s| s.total_sbe() as f64).collect();
    let ecdf = Ecdf::new(&counts);
    let cards_with_sbe = counts.iter().filter(|&&c| c > 0.0).count();
    let affected_fraction = if counts.is_empty() {
        0.0
    } else {
        cards_with_sbe as f64 / counts.len() as f64
    };

    let mut levels = Vec::new();
    for &k in EXCLUSION_LEVELS.iter() {
        // BTreeSet, not HashSet: contains-only, and a hash container in
        // the report pipeline would register as a T1 iteration source.
        let excluded: std::collections::BTreeSet<usize> =
            top_k_indices(&counts, k).into_iter().collect();
        let mut grid = CabinetGrid::new();
        let mut cage_totals = CageTally::default();
        let mut cage_distinct = CageTally::default();
        for (i, s) in snapshots.iter().enumerate() {
            if excluded.contains(&i) {
                continue;
            }
            let c = counts[i];
            if c > 0.0 {
                grid.add_node(s.node, c);
                cage_totals.add_node(s.node, c);
                cage_distinct.add_node(s.node, 1.0);
            }
        }
        levels.push(ExclusionLevel {
            removed: k,
            spatial_cv: grid.spatial_cv(),
            grid,
            cage_totals,
            cage_distinct,
        });
    }

    OffenderAnalysis {
        levels,
        cards_with_sbe,
        affected_fraction,
        top10_share: ecdf.share_of_top(10),
        top50_share: ecdf.share_of_top(50),
        gini: ecdf.gini(),
    }
}

impl OffenderAnalysis {
    /// The paper's skew-collapse claim: removing offenders homogenizes
    /// the spatial distribution. Removing the top 10 must cut the CV, and
    /// no later level may exceed the unfiltered skew. (Strict per-step
    /// monotonicity is too strong: excluding cards can leave zero-count
    /// holes that nudge the CV up slightly between filtered levels.)
    pub fn skew_collapses(&self) -> bool {
        let first = self.levels[0].spatial_cv;
        self.levels[1].spatial_cv <= first + 1e-12
            && self.levels.iter().all(|l| l.spatial_cv <= first + 1e-12)
    }

    /// The Fig. 15(b) claim: distinct-card cage distribution stays nearly
    /// uniform at every level (max/min cage ratio below `tolerance`).
    pub fn distinct_cards_uniform(&self, tolerance: f64) -> bool {
        self.levels
            .iter()
            .all(|l| l.cage_distinct.imbalance() <= tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard, MemoryStructure};
    use titan_topology::{Location, NodeId};

    fn snap(node: NodeId, sbe: u64) -> GpuSnapshot {
        let mut card = GpuCard::new(CardSerial(node.0));
        for _ in 0..sbe {
            card.apply_sbe(MemoryStructure::L2Cache, None, true);
        }
        card.inforom.flush_sbe();
        GpuSnapshot::take(node, &card, 0)
    }

    fn node_at(row: u8, col: u8, cage: u8, blade: u8) -> NodeId {
        Location {
            row,
            col,
            cage,
            blade,
            node: 0,
        }
        .node_id()
    }

    #[test]
    fn skew_collapse_with_synthetic_offenders() {
        // 200 cards with 1 SBE spread evenly; 10 offenders with 1000 each
        // packed in one cabinet.
        let mut snaps = Vec::new();
        for i in 0..200u8 {
            snaps.push(snap(node_at(i % 25, (i / 25) % 8, (i % 3), i % 8), 1));
        }
        for b in 0..8u8 {
            snaps.push(snap(node_at(0, 0, 2, b), 1000));
            if b < 2 {
                snaps.push(snap(node_at(0, 0, 1, b), 1000));
            }
        }
        let a = sbe_offender_analysis(&snaps);
        assert_eq!(a.cards_with_sbe, 210);
        assert!(a.top10_share > 0.9, "top10 {}", a.top10_share);
        assert!(a.skew_collapses());
        assert!(a.levels[0].spatial_cv > 3.0 * a.levels[1].spatial_cv);
        assert!(a.gini > 0.8);
    }

    #[test]
    fn exclusion_removes_counts() {
        let snaps = vec![
            snap(node_at(0, 0, 0, 0), 100),
            snap(node_at(1, 1, 1, 1), 1),
        ];
        let a = sbe_offender_analysis(&snaps);
        assert_eq!(a.levels[0].grid.total(), 101.0);
        // Top-10 removal takes both cards with sbe>0? top_k picks by count;
        // k=10 > n so all removed.
        assert_eq!(a.levels[1].grid.total(), 0.0);
    }

    #[test]
    fn distinct_cards_counted_once_per_card() {
        let snaps = vec![
            snap(node_at(0, 0, 2, 0), 500),
            snap(node_at(0, 0, 2, 1), 500),
            snap(node_at(0, 0, 0, 0), 1),
            snap(node_at(0, 0, 1, 0), 1),
        ];
        let a = sbe_offender_analysis(&snaps);
        let l0 = &a.levels[0];
        assert_eq!(l0.cage_distinct.by_cage, [1.0, 1.0, 2.0]);
        assert_eq!(l0.cage_totals.by_cage, [1.0, 1.0, 1000.0]);
    }

    #[test]
    fn zero_sbe_fleet() {
        let snaps = vec![snap(node_at(0, 0, 0, 0), 0)];
        let a = sbe_offender_analysis(&snaps);
        assert_eq!(a.cards_with_sbe, 0);
        assert_eq!(a.affected_fraction, 0.0);
        assert_eq!(a.top10_share, 0.0);
        assert!(a.skew_collapses());
    }

    #[test]
    fn empty_input() {
        let a = sbe_offender_analysis(&[]);
        assert_eq!(a.cards_with_sbe, 0);
        assert_eq!(a.levels.len(), 3);
    }
}
