//! Fig. 20 / Observation 13: userID as a proxy for code behaviour.
//!
//! "Fig. 20(left) shows that typically users utilizing more GPU core
//! hours tend to experience higher SBE occurrences. Interestingly, the
//! Spearman coefficient is 0.80 … Our correlation coefficient actually
//! improves as the top 10 SBE offender nodes are excluded."

// BTree containers, not hash: `by_user.into_values()` feeds a sort
// keyed on core-hours alone, so tied users would otherwise surface in
// hash-iteration order (T1).
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use titan_conlog::JobRecord;
use titan_nvsmi::{GpuSnapshot, JobEccDelta};
use titan_stats::{spearman, top_k_indices, CorrResult};
use titan_topology::NodeId;

/// One user's aggregate exposure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserRow {
    /// User id.
    pub user: u32,
    /// Total GPU core-hours across the user's jobs.
    pub core_hours: f64,
    /// Total SBEs attributed to the user's jobs.
    pub sbe: u64,
    /// Jobs counted.
    pub jobs: u32,
}

/// The Fig. 20 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserStudy {
    /// Per-user rows sorted by core-hours ascending (all jobs).
    pub rows: Vec<UserRow>,
    /// Spearman over all jobs.
    pub spearman_all: Option<CorrResult>,
    /// Spearman excluding jobs that touched a top-10 offender node.
    pub spearman_excluding_top10: Option<CorrResult>,
}

/// Aggregates per-user core-hours and SBEs and correlates them.
pub fn user_level_correlation(
    jobs: &[JobRecord],
    deltas: &[JobEccDelta],
    snapshots: &[GpuSnapshot],
) -> UserStudy {
    let sbe_by_apid: BTreeMap<u64, u64> =
        deltas.iter().map(|d| (d.apid, d.total_sbe())).collect();

    let node_sbe: Vec<f64> = snapshots.iter().map(|s| s.total_sbe() as f64).collect();
    let offenders: BTreeSet<NodeId> = top_k_indices(&node_sbe, 10)
        .into_iter()
        .filter(|&i| node_sbe[i] > 0.0)
        .map(|i| snapshots[i].node)
        .collect();

    let aggregate = |exclude_offenders: bool| -> Vec<UserRow> {
        let mut by_user: BTreeMap<u32, UserRow> = BTreeMap::new();
        for j in jobs {
            let Some(&sbe) = sbe_by_apid.get(&j.apid) else {
                continue;
            };
            if exclude_offenders && j.nodes.iter().any(|n| offenders.contains(n)) {
                continue;
            }
            let row = by_user.entry(j.user).or_insert(UserRow {
                user: j.user,
                core_hours: 0.0,
                sbe: 0,
                jobs: 0,
            });
            row.core_hours += j.gpu_core_hours;
            row.sbe += sbe;
            row.jobs += 1;
        }
        let mut rows: Vec<UserRow> = by_user.into_values().collect();
        rows.sort_by(|a, b| a.core_hours.total_cmp(&b.core_hours));
        rows
    };

    let rows = aggregate(false);
    let clean = aggregate(true);

    let corr = |rows: &[UserRow]| {
        let x: Vec<f64> = rows.iter().map(|r| r.core_hours).collect();
        let y: Vec<f64> = rows.iter().map(|r| r.sbe as f64).collect();
        spearman(&x, &y)
    };

    UserStudy {
        spearman_all: corr(&rows),
        spearman_excluding_top10: corr(&clean),
        rows,
    }
}

impl UserStudy {
    /// The heaviest users by core-hours (the "zoomed" right panel of
    /// Fig. 20 looks at the light end; this helper serves both).
    pub fn top_users(&self, k: usize) -> &[UserRow] {
        let n = self.rows.len();
        &self.rows[n.saturating_sub(k)..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard, MemoryStructure};

    fn job(apid: u64, user: u32, nodes: &[u32], ch: f64) -> JobRecord {
        JobRecord {
            apid,
            user,
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            start: 0,
            end: 3600,
            gpu_core_hours: ch,
            max_memory_bytes: 0,
            total_memory_byte_hours: 0.0,
        }
    }

    fn delta(apid: u64, sbe: u64) -> JobEccDelta {
        JobEccDelta {
            apid,
            per_node_sbe: vec![(NodeId(0), sbe)],
            per_structure_sbe: vec![sbe, 0, 0, 0, 0],
        }
    }

    fn snap(node: u32, sbe: u64) -> GpuSnapshot {
        let mut card = GpuCard::new(CardSerial(node));
        for _ in 0..sbe {
            card.apply_sbe(MemoryStructure::L2Cache, None, true);
        }
        GpuSnapshot::take(NodeId(node), &card, 0)
    }

    #[test]
    fn aggregates_per_user() {
        let jobs = vec![
            job(1, 7, &[0], 10.0),
            job(2, 7, &[1], 5.0),
            job(3, 8, &[2], 1.0),
        ];
        let deltas = vec![delta(1, 3), delta(2, 2), delta(3, 1)];
        let s = user_level_correlation(&jobs, &deltas, &[]);
        assert_eq!(s.rows.len(), 2);
        let u7 = s.rows.iter().find(|r| r.user == 7).unwrap();
        assert_eq!(u7.core_hours, 15.0);
        assert_eq!(u7.sbe, 5);
        assert_eq!(u7.jobs, 2);
    }

    #[test]
    fn monotone_exposure_gives_high_spearman() {
        // 20 users; user i runs i jobs of 1 core-hour with i SBEs each.
        let mut jobs = Vec::new();
        let mut deltas = Vec::new();
        let mut apid = 0;
        for u in 1..=20u32 {
            for _ in 0..u {
                jobs.push(job(apid, u, &[0], 1.0));
                deltas.push(delta(apid, u as u64));
                apid += 1;
            }
        }
        let s = user_level_correlation(&jobs, &deltas, &[]);
        let r = s.spearman_all.unwrap().r;
        assert!(r > 0.95, "{r}");
    }

    #[test]
    fn offender_exclusion_changes_population() {
        let jobs = vec![
            job(1, 1, &[100], 10.0),
            job(2, 1, &[5], 1.0),
            job(3, 2, &[6], 2.0),
        ];
        let deltas = vec![delta(1, 1000), delta(2, 1), delta(3, 2)];
        let snaps = vec![snap(100, 1000), snap(5, 1), snap(6, 2)];
        let s = user_level_correlation(&jobs, &deltas, &snaps);
        // Excluding the offender drops user 1's big job; both variants
        // must still compute.
        assert!(s.spearman_all.is_some());
        // With only 2 effective users post-exclusion the coefficient may
        // be degenerate but must not panic.
        let _ = s.spearman_excluding_top10;
    }

    #[test]
    fn top_users_slice() {
        let jobs = vec![job(1, 1, &[0], 1.0), job(2, 2, &[0], 9.0)];
        let deltas = vec![delta(1, 0), delta(2, 0)];
        let s = user_level_correlation(&jobs, &deltas, &[]);
        let top = s.top_users(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].user, 2);
        assert_eq!(s.top_users(10).len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let s = user_level_correlation(&[], &[], &[]);
        assert!(s.rows.is_empty());
        assert!(s.spearman_all.is_none());
    }
}
