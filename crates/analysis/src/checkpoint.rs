//! Checkpoint-interval analysis — the operational payoff the paper's
//! introduction motivates:
//!
//! > "HPC workloads are typically fairly long running simulations that
//! > often rely on checkpointing mechanism to continue making forward
//! > progress even in the case of failures."
//!
//! Given the MTBF measured from the console log (Observation 1), this
//! module computes the classic optimal checkpoint intervals
//! (Young's and Daly's formulas) and *evaluates* checkpoint policies
//! against the actual failure trace — including a lazy policy that
//! exploits the temporal locality of failures (the paper's reference
//! \[32\], "Lazy checkpointing: exploiting temporal locality in failures").

use serde::{Deserialize, Serialize};

/// Young's first-order optimal interval: τ = √(2 δ M), with δ the cost
/// of writing one checkpoint and M the MTBF (both seconds).
pub fn young_interval(mtbf_secs: f64, checkpoint_cost_secs: f64) -> f64 {
    (2.0 * checkpoint_cost_secs * mtbf_secs).sqrt()
}

/// Daly's higher-order refinement of Young's formula.
pub fn daly_interval(mtbf_secs: f64, checkpoint_cost_secs: f64) -> f64 {
    let d = checkpoint_cost_secs;
    let m = mtbf_secs;
    if d >= 2.0 * m {
        return m; // degenerate regime: checkpointing costs more than failing
    }
    (2.0 * d * m).sqrt() * (1.0 + (d / (2.0 * m)).sqrt() / 3.0 + d / (9.0 * m)) - d
}

/// A checkpointing policy to evaluate against a failure trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// Checkpoint every `interval` seconds.
    Periodic {
        /// Interval, seconds.
        interval: f64,
    },
    /// Lazy: checkpoint every `base` seconds normally, but stretch the
    /// interval by `stretch` (>1) during the `quiet_window` seconds that
    /// follow a failure — failures cluster in time, so the period right
    /// after one (post-repair) is statistically quiet on the *same*
    /// resources once the bad actors are removed.
    Lazy {
        /// Baseline interval, seconds.
        base: f64,
        /// Interval multiplier inside the post-failure quiet window.
        stretch: f64,
        /// Quiet-window length, seconds.
        quiet_window: f64,
    },
}

/// Result of replaying a policy against a failure trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Fraction of wall-clock spent on useful work (0..1).
    pub efficiency: f64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Failures encountered.
    pub failures: u64,
    /// Seconds of work lost to rollbacks.
    pub lost_work_secs: f64,
    /// Seconds spent writing checkpoints.
    pub checkpoint_secs: f64,
}

/// Replays `policy` over a run of `span_secs` with failures at
/// `failure_times` (sorted, seconds), checkpoint cost `cost` and restart
/// cost `restart`. The application loses all work since the last
/// completed checkpoint on each failure.
pub fn evaluate_policy(
    failure_times: &[u64],
    span_secs: u64,
    cost: f64,
    restart: f64,
    policy: CheckpointPolicy,
) -> PolicyOutcome {
    let mut now = 0.0f64;
    let span = span_secs as f64;
    let mut useful = 0.0f64;
    let mut lost = 0.0f64;
    let mut ckpt_time = 0.0f64;
    let mut checkpoints = 0u64;
    let mut failures = 0u64;
    let mut fi = 0usize;
    let mut last_failure: Option<f64> = None;
    // Work accumulated since the last completed checkpoint.
    let mut exposed = 0.0f64;

    let interval_at = |t: f64, last_failure: Option<f64>| -> f64 {
        match policy {
            CheckpointPolicy::Periodic { interval } => interval.max(1.0),
            CheckpointPolicy::Lazy {
                base,
                stretch,
                quiet_window,
            } => match last_failure {
                Some(lf) if t - lf < quiet_window => (base * stretch).max(1.0),
                _ => base.max(1.0),
            },
        }
    };

    while now < span {
        let interval = interval_at(now, last_failure);
        // Next segment: work `interval`, then checkpoint `cost`.
        let segment_end = (now + interval + cost).min(span);
        // Does a failure land inside this segment?
        let next_failure = failure_times.get(fi).map(|&t| t as f64);
        match next_failure {
            Some(ft) if ft < segment_end && ft >= now => {
                // Fail mid-segment: lose everything since last checkpoint.
                failures += 1;
                fi += 1;
                let worked_this_segment = (ft - now).min(interval).max(0.0);
                lost += exposed + worked_this_segment;
                exposed = 0.0;
                last_failure = Some(ft);
                now = ft + restart;
            }
            _ => {
                // Segment completes: work + checkpoint.
                let worked = (segment_end - now - cost).max(0.0);
                useful += worked;
                exposed = 0.0; // checkpoint commits the work
                if segment_end - now >= interval {
                    ckpt_time += cost;
                    checkpoints += 1;
                }
                now = segment_end;
            }
        }
        // Skip failures that landed during restart downtime.
        while failure_times.get(fi).is_some_and(|&t| (t as f64) < now) {
            fi += 1;
        }
    }

    PolicyOutcome {
        efficiency: useful / span,
        checkpoints,
        failures,
        lost_work_secs: lost,
        checkpoint_secs: ckpt_time,
    }
}

/// Sweeps periodic intervals around the analytic optimum and returns
/// `(interval, outcome)` pairs — the ablation data for "was Young/Daly
/// right on this trace".
pub fn interval_sweep(
    failure_times: &[u64],
    span_secs: u64,
    cost: f64,
    restart: f64,
    intervals: &[f64],
) -> Vec<(f64, PolicyOutcome)> {
    intervals
        .iter()
        .map(|&iv| {
            (
                iv,
                evaluate_policy(
                    failure_times,
                    span_secs,
                    cost,
                    restart,
                    CheckpointPolicy::Periodic { interval: iv },
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_daly_formulas() {
        // M = 160 h, δ = 5 min: Young ≈ sqrt(2*300*576000) ≈ 18,590 s.
        let m = 160.0 * 3600.0;
        let y = young_interval(m, 300.0);
        assert!((y - 18_590.0).abs() < 50.0, "{y}");
        let d = daly_interval(m, 300.0);
        // Daly's correction is small but positive-minus-δ here.
        assert!((d - y).abs() < 0.05 * y, "young {y} vs daly {d}");
        // Degenerate regime.
        assert_eq!(daly_interval(100.0, 1_000.0), 100.0);
    }

    #[test]
    fn no_failures_efficiency_is_checkpoint_overhead_only() {
        let out = evaluate_policy(
            &[],
            1_000_000,
            100.0,
            0.0,
            CheckpointPolicy::Periodic { interval: 900.0 },
        );
        assert_eq!(out.failures, 0);
        // Efficiency ≈ 900/1000.
        assert!((out.efficiency - 0.9).abs() < 0.01, "{}", out.efficiency);
        assert!(out.checkpoints > 990 && out.checkpoints < 1010);
    }

    #[test]
    fn failures_cost_rollback_work() {
        // One failure halfway through a segment.
        let out = evaluate_policy(
            &[500],
            10_000,
            0.0,
            0.0,
            CheckpointPolicy::Periodic { interval: 1_000.0 },
        );
        assert_eq!(out.failures, 1);
        assert!((out.lost_work_secs - 500.0).abs() < 1.0);
        assert!(out.efficiency < 1.0);
    }

    #[test]
    fn frequent_failures_favor_short_intervals() {
        // Failures every ~2000 s; compare τ=200 vs τ=5000.
        let failures: Vec<u64> = (1..200).map(|i| i * 2_000).collect();
        let span = 400_000;
        let short = evaluate_policy(
            &failures,
            span,
            20.0,
            10.0,
            CheckpointPolicy::Periodic { interval: 200.0 },
        );
        let long = evaluate_policy(
            &failures,
            span,
            20.0,
            10.0,
            CheckpointPolicy::Periodic { interval: 5_000.0 },
        );
        assert!(
            short.efficiency > long.efficiency,
            "short {} vs long {}",
            short.efficiency,
            long.efficiency
        );
    }

    #[test]
    fn sweep_peaks_near_analytic_optimum() {
        // Exponential-ish failures with MTBF 10,000 s via a deterministic
        // low-discrepancy stand-in (failures at irregular spacings).
        let mut failures = Vec::new();
        let mut t = 0u64;
        for i in 1..100u64 {
            t += 4_000 + (i * 7_919) % 12_000; // mean ≈ 10k
            failures.push(t);
        }
        let span = *failures.last().unwrap() + 10_000;
        let cost = 50.0;
        let y = young_interval(10_000.0, cost);
        let sweep = interval_sweep(
            &failures,
            span,
            cost,
            30.0,
            &[y / 8.0, y / 2.0, y, y * 2.0, y * 8.0],
        );
        let best = sweep
            .iter()
            .max_by(|a, b| a.1.efficiency.total_cmp(&b.1.efficiency))
            .unwrap()
            .0;
        // The best interval in the sweep is within 2x of Young's.
        assert!(
            best >= y / 2.0 && best <= y * 2.0,
            "best {best} vs young {y}"
        );
    }

    #[test]
    fn lazy_policy_checkpoint_reduction() {
        // Clustered failures: bursts then long quiet stretches. Lazy
        // stretching in the quiet window writes fewer checkpoints for
        // similar efficiency.
        let mut failures = Vec::new();
        for burst in 0..10u64 {
            let base = burst * 200_000;
            failures.extend([base + 1_000, base + 3_000, base + 5_000]);
        }
        let span = 2_000_000;
        let periodic = evaluate_policy(
            &failures,
            span,
            30.0,
            10.0,
            CheckpointPolicy::Periodic { interval: 2_000.0 },
        );
        let lazy = evaluate_policy(
            &failures,
            span,
            30.0,
            10.0,
            CheckpointPolicy::Lazy {
                base: 2_000.0,
                stretch: 4.0,
                quiet_window: 150_000.0,
            },
        );
        assert!(
            lazy.checkpoints < periodic.checkpoints,
            "lazy {} vs periodic {}",
            lazy.checkpoints,
            periodic.checkpoints
        );
        // Efficiency within a small margin of the periodic policy.
        assert!(
            lazy.efficiency > periodic.efficiency - 0.03,
            "lazy {} vs periodic {}",
            lazy.efficiency,
            periodic.efficiency
        );
    }

    #[test]
    fn outcome_accounting_consistent() {
        let failures: Vec<u64> = (1..50).map(|i| i * 7_777).collect();
        let out = evaluate_policy(
            &failures,
            500_000,
            25.0,
            15.0,
            CheckpointPolicy::Periodic { interval: 1_500.0 },
        );
        // useful + lost + checkpoint + restart downtime <= span (approx).
        let restart_secs = out.failures as f64 * 15.0;
        let accounted = out.efficiency * 500_000.0
            + out.lost_work_secs
            + out.checkpoint_secs
            + restart_secs;
        assert!(accounted <= 500_000.0 + 1_500.0, "{accounted}");
        assert!(out.efficiency > 0.5);
    }
}
