//! Fig. 21 / Observation 14: GPU workload characterization.
//!
//! Four panels: jobs sorted by GPU core-hours show (a) memory and
//! (b) node-count profiles; jobs sorted by node count show (c) wall-clock
//! and (d) memory profiles. The paper's reading: memory-maximal jobs use
//! below-average core-hours and smaller node counts; long-wall-clock jobs
//! can be small.

use serde::{Deserialize, Serialize};
use titan_conlog::JobRecord;
use titan_stats::spearman;

use crate::correlation::normalize_to_mean;

/// Fig. 21's four panels plus the headline statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCharacterization {
    /// (a) sorted by core-hours: normalized max memory.
    pub by_corehours_maxmem: Vec<f64>,
    /// (a') sorted by core-hours: normalized total memory.
    pub by_corehours_totalmem: Vec<f64>,
    /// (b) sorted by core-hours: normalized node count.
    pub by_corehours_nodes: Vec<f64>,
    /// (c) sorted by node count: normalized wall-clock.
    pub by_nodes_wall: Vec<f64>,
    /// (d) sorted by node count: normalized max memory.
    pub by_nodes_maxmem: Vec<f64>,
    /// Spearman(core-hours, nodes) — expected clearly positive.
    pub corehours_nodes_spearman: Option<f64>,
    /// Mean normalized core-hours of the top-decile-by-max-memory jobs —
    /// expected < 1 (below average).
    pub memheavy_corehours_ratio: f64,
    /// Fraction of the top-5%-longest-wall jobs with below-*mean* node
    /// count — expected > 0.5 ("some jobs with smaller node counts may
    /// actually be the longest running jobs").
    pub longest_jobs_small_fraction: f64,
    /// Mean normalized node count of the top-decile-by-max-memory jobs —
    /// expected < 1.
    pub memheavy_nodes_ratio: f64,
    /// Jobs analyzed.
    pub n_jobs: usize,
}

/// Runs the characterization over the job log.
pub fn workload_characterization(jobs: &[JobRecord]) -> WorkloadCharacterization {
    let n = jobs.len();
    let ch: Vec<f64> = jobs.iter().map(|j| j.gpu_core_hours).collect();
    let nodes: Vec<f64> = jobs.iter().map(|j| j.node_count() as f64).collect();
    let maxmem: Vec<f64> = jobs.iter().map(|j| j.max_memory_bytes as f64).collect();
    let totalmem: Vec<f64> = jobs.iter().map(|j| j.total_memory_byte_hours).collect();
    let wall: Vec<f64> = jobs.iter().map(|j| j.wall_seconds() as f64).collect();

    let order_by = |key: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| key[a].total_cmp(&key[b]));
        idx
    };
    let pick = |src: &[f64], order: &[usize]| -> Vec<f64> {
        normalize_to_mean(&order.iter().map(|&i| src[i]).collect::<Vec<f64>>())
    };

    let by_ch = order_by(&ch);
    let by_nd = order_by(&nodes);

    // Top decile by max memory.
    let by_mem = order_by(&maxmem);
    let decile = &by_mem[n.saturating_sub(n / 10)..];
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let ch_mean = mean(&ch);
    let nodes_mean = mean(&nodes);
    let memheavy_corehours_ratio = if decile.is_empty() || ch_mean == 0.0 {
        f64::NAN
    } else {
        mean(&decile.iter().map(|&i| ch[i]).collect::<Vec<f64>>()) / ch_mean
    };
    let memheavy_nodes_ratio = if decile.is_empty() || nodes_mean == 0.0 {
        f64::NAN
    } else {
        mean(&decile.iter().map(|&i| nodes[i]).collect::<Vec<f64>>()) / nodes_mean
    };

    // Top 5% by wall clock: fraction with below-mean node count. The
    // mean is pulled up by capability jobs, so "below mean" captures the
    // paper's "smaller node counts" relative to the big runs.
    let by_wall = order_by(&wall);
    let top5 = &by_wall[n.saturating_sub((n / 20).max(1).min(n))..];
    let longest_jobs_small_fraction = if top5.is_empty() {
        f64::NAN
    } else {
        top5.iter().filter(|&&i| nodes[i] < nodes_mean).count() as f64 / top5.len() as f64
    };

    WorkloadCharacterization {
        by_corehours_maxmem: pick(&maxmem, &by_ch),
        by_corehours_totalmem: pick(&totalmem, &by_ch),
        by_corehours_nodes: pick(&nodes, &by_ch),
        by_nodes_wall: pick(&wall, &by_nd),
        by_nodes_maxmem: pick(&maxmem, &by_nd),
        corehours_nodes_spearman: spearman(&ch, &nodes).map(|r| r.r),
        memheavy_corehours_ratio,
        longest_jobs_small_fraction,
        memheavy_nodes_ratio,
        n_jobs: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;

    fn job(apid: u64, nodes: usize, wall: u64, ch: f64, maxmem: u64) -> JobRecord {
        JobRecord {
            apid,
            user: 0,
            nodes: (0..nodes as u32).map(NodeId).collect(),
            start: 0,
            end: wall,
            gpu_core_hours: ch,
            max_memory_bytes: maxmem,
            total_memory_byte_hours: maxmem as f64 * nodes as f64 * wall as f64 / 3600.0,
        }
    }

    /// A synthetic population with the paper's structure: capability
    /// (big, moderate), capacity (small, long), memory hogs (small,
    /// short, max memory).
    fn population() -> Vec<JobRecord> {
        let mut jobs = Vec::new();
        let mut apid = 0;
        for i in 0..40 {
            // Capability: 1000 nodes, 4h, high core-hours, modest memory.
            jobs.push(job(apid, 1000 + i, 4 * 3600, 4000.0, 1 << 30));
            apid += 1;
        }
        for i in 0..40 {
            // Capacity: 20 nodes, 20h, low-ish core-hours.
            jobs.push(job(apid, 20 + i as usize % 5, 20 * 3600, 400.0, 1 << 29));
            apid += 1;
        }
        for _ in 0..40 {
            // Memory hogs: 10 nodes, 2h, low core-hours, 6 GB.
            jobs.push(job(apid, 10, 2 * 3600, 100.0, 6 << 30));
            apid += 1;
        }
        jobs
    }

    #[test]
    fn paper_shapes_hold_on_synthetic_population() {
        let c = workload_characterization(&population());
        assert_eq!(c.n_jobs, 120);
        // Memory-heavy jobs: below-average core-hours and node counts.
        assert!(c.memheavy_corehours_ratio < 1.0, "{}", c.memheavy_corehours_ratio);
        assert!(c.memheavy_nodes_ratio < 1.0, "{}", c.memheavy_nodes_ratio);
        // Long-wall jobs are small.
        assert!(c.longest_jobs_small_fraction > 0.5, "{}", c.longest_jobs_small_fraction);
        // Core-hours rise with node count.
        assert!(c.corehours_nodes_spearman.unwrap() > 0.5);
    }

    #[test]
    fn series_lengths_and_normalization() {
        let c = workload_characterization(&population());
        assert_eq!(c.by_corehours_maxmem.len(), 120);
        assert_eq!(c.by_nodes_wall.len(), 120);
        for series in [
            &c.by_corehours_maxmem,
            &c.by_corehours_totalmem,
            &c.by_corehours_nodes,
            &c.by_nodes_wall,
            &c.by_nodes_maxmem,
        ] {
            let avg: f64 = series.iter().sum::<f64>() / series.len() as f64;
            assert!((avg - 1.0).abs() < 1e-9, "normalized mean {avg}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let c = workload_characterization(&[]);
        assert_eq!(c.n_jobs, 0);
        assert!(c.by_corehours_maxmem.is_empty());
        let one = vec![job(1, 10, 100, 1.0, 1)];
        let c = workload_characterization(&one);
        assert_eq!(c.n_jobs, 1);
        assert!(c.corehours_nodes_spearman.is_none());
    }
}
