//! Attribution granularity — §4's collection-method limitation made
//! quantitative:
//!
//! > "the SBE counts can not be collected on a per aprun basis instead
//! > it is collected on a job basis since the nvidia-smi output is run
//! > before and after the job script, irrespective of number of apruns
//! > within the job script."
//!
//! Given the aprun log and the per-job SBE deltas, this module reports
//! how much of the SBE volume is *ambiguous*: attributable to a job that
//! ran more than one aprun, where no finer attribution is possible.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_conlog::Aprun;
use titan_nvsmi::JobEccDelta;

/// The ambiguity report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityReport {
    /// Jobs with at least one attributed SBE.
    pub jobs_with_sbe: u64,
    /// Of those, jobs that ran more than one aprun.
    pub multi_aprun_jobs_with_sbe: u64,
    /// SBEs attributed to single-aprun jobs (fully attributable).
    pub attributable_sbe: u64,
    /// SBEs attributed to multi-aprun jobs (ambiguous below job level).
    pub ambiguous_sbe: u64,
    /// Mean apruns per SBE-carrying job.
    pub mean_apruns_per_sbe_job: f64,
}

impl GranularityReport {
    /// Fraction of the SBE volume that cannot be attributed to a single
    /// aprun.
    pub fn ambiguous_fraction(&self) -> f64 {
        let total = self.attributable_sbe + self.ambiguous_sbe;
        if total == 0 {
            0.0
        } else {
            self.ambiguous_sbe as f64 / total as f64
        }
    }
}

/// Computes the report from the aprun log and job-level SBE deltas.
pub fn aprun_granularity(apruns: &[Aprun], deltas: &[JobEccDelta]) -> GranularityReport {
    let mut apruns_per_job: BTreeMap<u64, u32> = BTreeMap::new();
    for a in apruns {
        *apruns_per_job.entry(a.apid).or_default() += 1;
    }
    let mut report = GranularityReport {
        jobs_with_sbe: 0,
        multi_aprun_jobs_with_sbe: 0,
        attributable_sbe: 0,
        ambiguous_sbe: 0,
        mean_apruns_per_sbe_job: 0.0,
    };
    let mut aprun_sum = 0u64;
    for d in deltas {
        let sbe = d.total_sbe();
        if sbe == 0 {
            continue;
        }
        let n = apruns_per_job.get(&d.apid).copied().unwrap_or(1);
        report.jobs_with_sbe += 1;
        aprun_sum += n as u64;
        if n > 1 {
            report.multi_aprun_jobs_with_sbe += 1;
            report.ambiguous_sbe += sbe;
        } else {
            report.attributable_sbe += sbe;
        }
    }
    if report.jobs_with_sbe > 0 {
        report.mean_apruns_per_sbe_job = aprun_sum as f64 / report.jobs_with_sbe as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;

    fn aprun(apid: u64, index: u32) -> Aprun {
        Aprun {
            apid,
            index,
            start: index as u64 * 100,
            end: index as u64 * 100 + 50,
        }
    }

    fn delta(apid: u64, sbe: u64) -> JobEccDelta {
        JobEccDelta {
            apid,
            per_node_sbe: vec![(NodeId(0), sbe)],
            per_structure_sbe: vec![sbe, 0, 0, 0, 0],
        }
    }

    #[test]
    fn splits_attributable_and_ambiguous() {
        let apruns = vec![
            aprun(1, 0),
            aprun(2, 0),
            aprun(2, 1),
            aprun(2, 2),
            aprun(3, 0),
        ];
        let deltas = vec![delta(1, 10), delta(2, 5), delta(3, 0)];
        let r = aprun_granularity(&apruns, &deltas);
        assert_eq!(r.jobs_with_sbe, 2);
        assert_eq!(r.multi_aprun_jobs_with_sbe, 1);
        assert_eq!(r.attributable_sbe, 10);
        assert_eq!(r.ambiguous_sbe, 5);
        assert!((r.ambiguous_fraction() - 5.0 / 15.0).abs() < 1e-12);
        assert!((r.mean_apruns_per_sbe_job - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_aprun_log_defaults_to_single() {
        // Jobs absent from the aprun log count as single-aprun (the log
        // stream is lossy in practice).
        let deltas = vec![delta(9, 3)];
        let r = aprun_granularity(&[], &deltas);
        assert_eq!(r.attributable_sbe, 3);
        assert_eq!(r.ambiguous_sbe, 0);
    }

    #[test]
    fn empty_inputs() {
        let r = aprun_granularity(&[], &[]);
        assert_eq!(r.jobs_with_sbe, 0);
        assert_eq!(r.ambiguous_fraction(), 0.0);
    }
}
