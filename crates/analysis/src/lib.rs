//! # titan-analysis
//!
//! The paper's contribution: the log-analysis methodology that turns raw
//! console logs, job logs, and nvidia-smi snapshots into the findings of
//! §3–§4. Every module implements one family of figures:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`filtering`] | §2.2 parent/child filtering; the 5 s job-level dedup of Fig. 12 |
//! | [`timeseries`] | monthly frequencies: Figs. 2, 4, 6, 9, 10, 11; MTBF & burstiness (Obs. 1, 6) |
//! | [`spatial`] | 25×8 cabinet grids & cage tallies: Figs. 3, 5, 7, 12 |
//! | [`interarrival`] | DBE → page-retirement delays: Fig. 8 |
//! | [`cooccurrence`] | the 300 s parent→child heatmap: Fig. 13 |
//! | [`offenders`] | SBE skew & top-K exclusion: Figs. 14, 15 (Obs. 10) |
//! | [`correlation`] | utilization ↔ SBE: Figs. 16–19 (Obs. 11, 12) |
//! | [`user_proxy`] | per-user SBE exposure: Fig. 20 (Obs. 13) |
//! | [`workload_charac`] | workload shapes: Fig. 21 (Obs. 14) |
//! | [`consistency`] | console vs nvidia-smi DBE accounting (Obs. 2) |
//! | [`checkpoint`] | extension: Young/Daly intervals + policy replay on the failure trace (the intro's checkpointing motivation; ref \[32\]) |
//! | [`prediction`] | extension: precursor-based failure prediction (Obs. 9's correlation-for-prediction reading) |
//! | [`thermal`] | the §3.1 temperature derivation: cage gradient from nvidia-smi snapshots |
//! | [`granularity`] | §4's aprun-attribution limitation, quantified |
//!
//! **Blindness rule**: functions here accept only the four observable
//! data sources ([`titan_conlog::ConsoleEvent`]s, [`titan_conlog::JobRecord`]s,
//! [`titan_nvsmi::JobEccDelta`]s, [`titan_nvsmi::GpuSnapshot`]s) — never
//! simulator ground truth. Integration tests *compare* analysis output to
//! ground truth; the analysis itself cannot see it, exactly like the
//! paper's authors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod consistency;
pub mod cooccurrence;
pub mod correlation;
pub mod filtering;
pub mod granularity;
pub mod interarrival;
pub mod offenders;
pub mod prediction;
pub mod spatial;
pub mod thermal;
pub mod timeseries;
pub mod user_proxy;
pub mod workload_charac;

pub use checkpoint::{daly_interval, evaluate_policy, young_interval, CheckpointPolicy};
pub use consistency::{dbe_accounting, DbeAccounting};
pub use cooccurrence::{cooccurrence_heatmap, Heatmap};
pub use correlation::{job_sbe_correlations, CorrelationStudy, SortedSeries};
pub use filtering::{dedup_job_level, split_parents_children, FilterOutcome};
pub use granularity::{aprun_granularity, GranularityReport};
pub use interarrival::{retirement_delays, RetirementDelays};
pub use offenders::{sbe_offender_analysis, OffenderAnalysis};
pub use prediction::{train_and_evaluate, PrecursorModel, PredictionScore};
pub use spatial::{cage_tally, spatial_grid, spatial_with_filtering, SpatialFiltering};
pub use thermal::{thermal_survey, ThermalSurvey};
pub use timeseries::{monthly_counts, MonthlySeries};
pub use user_proxy::{user_level_correlation, UserStudy};
pub use workload_charac::{workload_characterization, WorkloadCharacterization};
