//! Fig. 13: the temporal re-occurrence heatmap.
//!
//! "The figure shows the fraction of Xid events shown on 'Previous
//! Failure' axis that will observe an event shown on 'Following Failure'
//! within a 300 sec window. … The top heatmap includes all event pairs
//! while the bottom heatmap excludes the pairs of same type of events."
//!
//! Co-occurrence is scoped to the same node or the same job (apid): a
//! following failure on an unrelated node across the machine is not a
//! child of this event.

use serde::{Deserialize, Serialize};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;

/// The paper's 300-second window.
pub const WINDOW_SECS: u64 = 300;

/// The kinds plotted on Fig. 13's axes, in display order.
pub const HEATMAP_KINDS: [GpuErrorKind; 13] = [
    GpuErrorKind::GraphicsEngineException, // 13
    GpuErrorKind::OffTheBus,
    GpuErrorKind::GpuMemoryPageFault,   // 31
    GpuErrorKind::DriverFirmware,       // 38
    GpuErrorKind::GpuStoppedProcessing, // 43
    GpuErrorKind::ContextSwitchFault,   // 44
    GpuErrorKind::PreemptiveCleanup,    // 45
    GpuErrorKind::DoubleBitError,       // 48
    GpuErrorKind::VideoMemoryProgramming, // 57
    GpuErrorKind::UnstableVideoMemory,  // 58
    GpuErrorKind::MicrocontrollerHaltOld, // 59
    GpuErrorKind::MicrocontrollerHaltNew, // 62
    GpuErrorKind::EccPageRetirement,    // 63
];

/// A (previous × following) fraction matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Kinds on both axes.
    pub kinds: Vec<GpuErrorKind>,
    /// `fraction[i][j]` = P(an event of kinds\[i\] sees kinds\[j\] within
    /// the window, same node or same job).
    pub fraction: Vec<Vec<f64>>,
    /// Events of each previous-kind (the denominators).
    pub totals: Vec<u64>,
}

impl Heatmap {
    /// Fraction for a (previous, following) pair.
    pub fn get(&self, prev: GpuErrorKind, follow: GpuErrorKind) -> Option<f64> {
        let i = self.kinds.iter().position(|&k| k == prev)?;
        let j = self.kinds.iter().position(|&k| k == follow)?;
        Some(self.fraction[i][j])
    }

    /// The variant with the diagonal removed (the paper's bottom panel).
    pub fn without_diagonal(&self) -> Heatmap {
        let mut h = self.clone();
        for i in 0..h.kinds.len() {
            h.fraction[i][i] = 0.0;
        }
        h
    }

    /// Kinds whose row *and* diagonal are ~zero — the "relatively more
    /// isolated in nature" set (paper: off the bus, XID 38, 48, 63).
    pub fn isolated_kinds(&self, threshold: f64) -> Vec<GpuErrorKind> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.fraction[i][i] <= threshold)
            .map(|(_, &k)| k)
            .collect()
    }
}

/// Builds the Fig. 13 heatmap. Events must be time-sorted.
///
/// This is the heaviest scan in the pipeline — every event looks ahead
/// through its 300 s window, and application bursts put thousands of
/// events inside one window — so parents are processed in parallel
/// chunks (rayon) with a per-chunk matrix reduced at the end. The
/// chunking is over *parents only*; every chunk reads the shared event
/// slice forward past its own boundary, so results are identical to the
/// sequential scan.
pub fn cooccurrence_heatmap(events: &[ConsoleEvent]) -> Heatmap {
    use rayon::prelude::*;

    let kinds = HEATMAP_KINDS.to_vec();
    let kind_index = |k: GpuErrorKind| kinds.iter().position(|&x| x == k);
    let n = kinds.len();

    // Index events by kind for the scan.
    let evs: Vec<(usize, &ConsoleEvent)> = events
        .iter()
        .filter_map(|e| kind_index(e.kind).map(|i| (i, e)))
        .collect();

    // lint: allow(T1, the thread count only sizes chunks; the u64-sum reduce is associative+commutative, so values are chunking-independent)
    let chunk = (evs.len() / (rayon::current_num_threads() * 8)).max(1024);
    let (followed, totals) = (0..evs.len())
        .into_par_iter()
        .chunks(chunk)
        .map(|positions| {
            let mut followed = vec![0u64; n * n];
            let mut totals = vec![0u64; n];
            let mut seen = vec![false; n];
            for pos in positions {
                let (i, prev) = evs[pos];
                totals[i] += 1;
                seen.iter_mut().for_each(|s| *s = false);
                for &(j, follow) in evs[pos + 1..].iter() {
                    if follow.time.saturating_sub(prev.time) > WINDOW_SECS {
                        break;
                    }
                    if seen[j] {
                        continue;
                    }
                    let related = follow.node == prev.node
                        || (follow.apid.is_some() && follow.apid == prev.apid);
                    if related {
                        seen[j] = true;
                        followed[i * n + j] += 1;
                    }
                }
            }
            (followed, totals)
        })
        .reduce(
            || (vec![0u64; n * n], vec![0u64; n]),
            |(mut fa, mut ta), (fb, tb)| {
                for (a, b) in fa.iter_mut().zip(&fb) {
                    *a += b;
                }
                for (a, b) in ta.iter_mut().zip(&tb) {
                    *a += b;
                }
                (fa, ta)
            },
        );

    let fraction = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let t = totals[i];
                    if t == 0 {
                        0.0
                    } else {
                        followed[i * n + j] as f64 / t as f64
                    }
                })
                .collect()
        })
        .collect();

    Heatmap {
        kinds,
        fraction,
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;
    use GpuErrorKind::*;

    fn ev(time: u64, node: u32, kind: GpuErrorKind, apid: Option<u64>) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(node),
            kind,
            structure: None,
            page: None,
            apid,
        }
    }

    #[test]
    fn dbe_followed_by_cleanup() {
        // Every DBE followed by XID 45 on the same node within 300 s.
        let mut events = Vec::new();
        for k in 0..10u64 {
            events.push(ev(k * 10_000, 1, DoubleBitError, None));
            events.push(ev(k * 10_000 + 60, 1, PreemptiveCleanup, None));
        }
        let h = cooccurrence_heatmap(&events);
        assert_eq!(h.get(DoubleBitError, PreemptiveCleanup), Some(1.0));
        assert_eq!(h.get(DoubleBitError, DoubleBitError), Some(0.0));
        assert_eq!(h.totals[7], 10); // DBE row
    }

    #[test]
    fn window_boundary() {
        let events = vec![
            ev(0, 1, DoubleBitError, None),
            ev(301, 1, PreemptiveCleanup, None), // past 300 s
        ];
        let h = cooccurrence_heatmap(&events);
        assert_eq!(h.get(DoubleBitError, PreemptiveCleanup), Some(0.0));
        let events = vec![
            ev(0, 1, DoubleBitError, None),
            ev(300, 1, PreemptiveCleanup, None), // at the edge: counted
        ];
        let h = cooccurrence_heatmap(&events);
        assert_eq!(h.get(DoubleBitError, PreemptiveCleanup), Some(1.0));
    }

    #[test]
    fn unrelated_nodes_do_not_pair() {
        let events = vec![
            ev(0, 1, DoubleBitError, None),
            ev(10, 2, PreemptiveCleanup, None), // other node, no apid
        ];
        let h = cooccurrence_heatmap(&events);
        assert_eq!(h.get(DoubleBitError, PreemptiveCleanup), Some(0.0));
    }

    #[test]
    fn same_apid_pairs_across_nodes() {
        let events = vec![
            ev(0, 1, GraphicsEngineException, Some(9)),
            ev(10, 2, GpuStoppedProcessing, Some(9)),
        ];
        let h = cooccurrence_heatmap(&events);
        assert_eq!(h.get(GraphicsEngineException, GpuStoppedProcessing), Some(1.0));
    }

    #[test]
    fn diagonal_counts_self_repeats() {
        let events = vec![
            ev(0, 1, GpuStoppedProcessing, None),
            ev(10, 1, GpuStoppedProcessing, None),
            ev(20, 1, GpuStoppedProcessing, None),
        ];
        let h = cooccurrence_heatmap(&events);
        // First two events see a same-kind follower; the third doesn't.
        let d = h.get(GpuStoppedProcessing, GpuStoppedProcessing).unwrap();
        assert!((d - 2.0 / 3.0).abs() < 1e-9);
        let no_diag = h.without_diagonal();
        assert_eq!(no_diag.get(GpuStoppedProcessing, GpuStoppedProcessing), Some(0.0));
    }

    #[test]
    fn isolated_kinds_detected() {
        let events = vec![
            ev(0, 1, DriverFirmware, None),
            ev(100_000, 2, DriverFirmware, None),
            ev(0, 3, GpuStoppedProcessing, None),
            ev(10, 3, GpuStoppedProcessing, None),
        ];
        let h = cooccurrence_heatmap(&events);
        let isolated = h.isolated_kinds(0.0);
        assert!(isolated.contains(&DriverFirmware));
        assert!(!isolated.contains(&GpuStoppedProcessing));
    }

    #[test]
    fn multiple_followers_counted_once() {
        // Three XID 45s after one DBE: the fraction is still 1.0, not 3.
        let events = vec![
            ev(0, 1, DoubleBitError, None),
            ev(10, 1, PreemptiveCleanup, None),
            ev(20, 1, PreemptiveCleanup, None),
            ev(30, 1, PreemptiveCleanup, None),
        ];
        let h = cooccurrence_heatmap(&events);
        assert_eq!(h.get(DoubleBitError, PreemptiveCleanup), Some(1.0));
    }

    #[test]
    fn empty_input() {
        let h = cooccurrence_heatmap(&[]);
        assert!(h.totals.iter().all(|&t| t == 0));
        assert!(h.fraction.iter().flatten().all(|&f| f == 0.0));
    }
}
