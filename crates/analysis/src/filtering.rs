//! Event filtering: separating "parent" events from their "child"
//! re-reports.
//!
//! §2.2: "there may be one real 'parent' event and multiple 'child'
//! events. One can exclude these 'child' error events by applying a
//! filtering to avoid bias in failure characterization."
//!
//! §3.2 / Fig. 12 specializes this to application XIDs: "any XID 13 error
//! appearing in the console log after a previously encountered XID 13 is
//! ignored if the time difference is less than five seconds. Effectively,
//! this counts only one XID 13 event per job."

use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;

/// Result of a filtering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutcome {
    /// Surviving parent events.
    pub parents: Vec<ConsoleEvent>,
    /// Removed child events.
    pub children: Vec<ConsoleEvent>,
}

impl FilterOutcome {
    /// Fraction of raw events classified as children.
    pub fn child_fraction(&self) -> f64 {
        let total = self.parents.len() + self.children.len();
        if total == 0 {
            0.0
        } else {
            self.children.len() as f64 / total as f64
        }
    }
}

/// Job-level dedup for one error kind: after a surviving event of `kind`,
/// every same-kind event within `window_secs` is a child (regardless of
/// node — one incident reports across all the job's nodes).
///
/// Events must be sorted by time (console logs are). Non-matching kinds
/// pass through untouched into `parents`.
pub fn dedup_job_level(
    events: &[ConsoleEvent],
    kind: GpuErrorKind,
    window_secs: u64,
) -> FilterOutcome {
    let mut parents = Vec::new();
    let mut children = Vec::new();
    let mut last_kept: Option<u64> = None;
    for ev in events {
        if ev.kind != kind {
            parents.push(*ev);
            continue;
        }
        match last_kept {
            Some(t) if ev.time.saturating_sub(t) < window_secs => children.push(*ev),
            _ => {
                last_kept = Some(ev.time);
                parents.push(*ev);
            }
        }
    }
    FilterOutcome { parents, children }
}

/// Apid-aware variant: an event is a child only when a same-kind event
/// *on the same apid* precedes it within the window. More precise than
/// [`dedup_job_level`] when apids are present; identical behaviour when
/// they are absent (all grouped under `None`).
pub fn dedup_by_job(
    events: &[ConsoleEvent],
    kind: GpuErrorKind,
    window_secs: u64,
) -> FilterOutcome {
    use std::collections::BTreeMap;
    let mut parents = Vec::new();
    let mut children = Vec::new();
    let mut last_kept: BTreeMap<Option<u64>, u64> = BTreeMap::new();
    for ev in events {
        if ev.kind != kind {
            parents.push(*ev);
            continue;
        }
        match last_kept.get(&ev.apid) {
            Some(&t) if ev.time.saturating_sub(t) < window_secs => children.push(*ev),
            _ => {
                last_kept.insert(ev.apid, ev.time);
                parents.push(*ev);
            }
        }
    }
    FilterOutcome { parents, children }
}

/// Generic parent/child split per (node, kind): repeats of the same kind
/// on the same node within `window_secs` of the previous *kept* event are
/// children. This is the §2.2 "filtering scheme similar to other works
/// [15, 21, 30, 32]" used before failure characterization.
pub fn split_parents_children(events: &[ConsoleEvent], window_secs: u64) -> FilterOutcome {
    use std::collections::BTreeMap;
    let mut parents = Vec::new();
    let mut children = Vec::new();
    let mut last_kept: BTreeMap<(u32, GpuErrorKind), u64> = BTreeMap::new();
    for ev in events {
        let key = (ev.node.0, ev.kind);
        match last_kept.get(&key) {
            Some(&t) if ev.time.saturating_sub(t) < window_secs => children.push(*ev),
            _ => {
                last_kept.insert(key, ev.time);
                parents.push(*ev);
            }
        }
    }
    FilterOutcome { parents, children }
}

/// Keeps only events of one kind (helper used all over the figures).
pub fn of_kind(events: &[ConsoleEvent], kind: GpuErrorKind) -> Vec<ConsoleEvent> {
    events.iter().filter(|e| e.kind == kind).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;

    fn ev(time: u64, node: u32, kind: GpuErrorKind, apid: Option<u64>) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(node),
            kind,
            structure: None,
            page: None,
            apid,
        }
    }

    #[test]
    fn dedup_collapses_job_burst() {
        use GpuErrorKind::GraphicsEngineException as X13;
        // One incident reported on 4 nodes within 5s, then another 100s later.
        let events = vec![
            ev(100, 1, X13, Some(7)),
            ev(101, 2, X13, Some(7)),
            ev(103, 3, X13, Some(7)),
            ev(104, 4, X13, Some(7)),
            ev(200, 1, X13, Some(8)),
        ];
        let out = dedup_job_level(&events, X13, 5);
        assert_eq!(out.parents.len(), 2);
        assert_eq!(out.children.len(), 3);
        assert!((out.child_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dedup_ignores_other_kinds() {
        use GpuErrorKind::*;
        let events = vec![
            ev(100, 1, GraphicsEngineException, None),
            ev(101, 1, DoubleBitError, None),
            ev(102, 1, GraphicsEngineException, None),
        ];
        let out = dedup_job_level(&events, GraphicsEngineException, 5);
        // The DBE passes through; the second X13 is a child.
        assert_eq!(out.parents.len(), 2);
        assert_eq!(out.children.len(), 1);
    }

    #[test]
    fn dedup_by_job_separates_apids() {
        use GpuErrorKind::GraphicsEngineException as X13;
        let events = vec![
            ev(100, 1, X13, Some(1)),
            ev(101, 2, X13, Some(2)), // different job: parent
            ev(102, 3, X13, Some(1)), // child of job 1
        ];
        let out = dedup_by_job(&events, X13, 5);
        assert_eq!(out.parents.len(), 2);
        assert_eq!(out.children.len(), 1);
        // The coarse variant would fold the job-2 event too.
        let coarse = dedup_job_level(&events, X13, 5);
        assert_eq!(coarse.parents.len(), 1);
    }

    #[test]
    fn node_kind_split() {
        use GpuErrorKind::GpuStoppedProcessing as X43;
        let events = vec![
            ev(0, 1, X43, None),
            ev(10, 1, X43, None),  // child (within 60)
            ev(100, 1, X43, None), // parent (past window of the kept one)
            ev(10, 2, X43, None),  // other node: parent
        ];
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.time);
        let out = split_parents_children(&sorted, 60);
        assert_eq!(out.parents.len(), 3);
        assert_eq!(out.children.len(), 1);
    }

    #[test]
    fn window_measured_from_kept_event_not_last_child() {
        use GpuErrorKind::GpuStoppedProcessing as X43;
        // Chain: 0, 4, 8, 12 with window 5. Children at 4; 8 is ≥5 after
        // the kept 0? No: 8-0=8 ≥ 5 → parent; 12-8=4 → child.
        let events = vec![
            ev(0, 1, X43, None),
            ev(4, 1, X43, None),
            ev(8, 1, X43, None),
            ev(12, 1, X43, None),
        ];
        let out = split_parents_children(&events, 5);
        let kept: Vec<u64> = out.parents.iter().map(|e| e.time).collect();
        assert_eq!(kept, vec![0, 8]);
    }

    #[test]
    fn empty_input() {
        let out = split_parents_children(&[], 10);
        assert!(out.parents.is_empty() && out.children.is_empty());
        assert_eq!(out.child_fraction(), 0.0);
    }

    #[test]
    fn of_kind_filters() {
        use GpuErrorKind::*;
        let events = vec![
            ev(0, 1, DoubleBitError, None),
            ev(1, 1, OffTheBus, None),
            ev(2, 1, DoubleBitError, None),
        ];
        assert_eq!(of_kind(&events, DoubleBitError).len(), 2);
        assert_eq!(of_kind(&events, GraphicsEngineException).len(), 0);
    }
}
