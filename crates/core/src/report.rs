//! The consolidated study report: every figure rendered into one
//! operator-readable document, with the expectation registry appended.
//!
//! This is the artifact a site reliability team would circulate — the
//! textual equivalent of the paper's evaluation section.

use std::fmt::Write as _;

use titan_analysis::correlation::JobMetric;

use crate::expectations::evaluate_all;
use crate::figures::Figures;
use crate::render::{table, Render};
use crate::study::CompletedStudy;

/// Renders the full study report.
pub fn full_report(study: &CompletedStudy) -> String {
    let f = study.figures();
    let mut out = String::with_capacity(64 * 1024);

    let _ = writeln!(out, "# Titan GPU reliability study — simulated reproduction\n");
    let _ = writeln!(
        out,
        "window: {} days   seed: {:#x}   console events: {}   jobs: {}   parse skips: {}\n",
        study.config.sim.window / 86_400,
        study.config.sim.seed,
        study.data.console.len(),
        study.data.jobs.len(),
        study.data.console_parse.skipped,
    );

    // §3.1 hardware errors.
    let _ = writeln!(out, "## Hardware errors\n");
    let _ = writeln!(out, "{}", f.fig02_dbe_monthly.render());
    let _ = writeln!(
        out,
        "{}",
        table(
            "DBE summary (Observation 1 & 2)",
            &[
                (
                    "MTBF".into(),
                    format!("{:.0} h (paper ≈160 h)", f.fig02_mtbf_hours.unwrap_or(f64::NAN))
                ),
                (
                    "burstiness".into(),
                    format!("{:.2}", f.fig02_burstiness.unwrap_or(f64::NAN))
                ),
                (
                    "device-memory share".into(),
                    format!("{:.0}%", f.fig03_accounting.device_memory_fraction * 100.0)
                ),
                (
                    "console vs nvidia-smi".into(),
                    format!(
                        "{} vs {}",
                        f.fig03_accounting.console_dbe, f.fig03_accounting.nvsmi_dbe
                    )
                ),
                (
                    "cards with DBE>SBE".into(),
                    f.fig03_accounting.cards_dbe_exceeds_sbe.to_string()
                ),
            ]
        )
    );
    let _ = writeln!(out, "DBE cage distribution:\n{}", f.fig03_dbe_cage.0.render());
    let _ = writeln!(out, "{}", f.fig04_otb_monthly.render());
    let _ = writeln!(out, "{}", f.fig06_retire_monthly.render());
    let d = &f.fig08_delays;
    let _ = writeln!(
        out,
        "{}",
        table(
            "Retirement delay after DBE (Fig. 8)",
            &[
                ("<=10 min".into(), d.within_10min.to_string()),
                ("10 min - 6 h".into(), d.min10_to_6h.to_string()),
                ("later (two-SBE path)".into(), d.later.to_string()),
                (
                    "DBE pairs without retirement".into(),
                    d.dbe_pairs_without_retirement.to_string()
                ),
            ]
        )
    );
    let _ = writeln!(
        out,
        "{}",
        table(
            "Cage thermal survey (nvidia-smi)",
            &[
                (
                    "means bottom/mid/top".into(),
                    format!(
                        "{:.1} / {:.1} / {:.1} F",
                        f.thermal.mean_by_cage[0],
                        f.thermal.mean_by_cage[1],
                        f.thermal.mean_by_cage[2]
                    )
                ),
                (
                    "top-bottom delta".into(),
                    format!("{:.1} F (paper: >10 F)", f.thermal.top_bottom_delta_f)
                ),
            ]
        )
    );

    // §3.2 software errors.
    let _ = writeln!(out, "## Software / firmware errors\n");
    let _ = writeln!(out, "{}", f.fig10_xid13_monthly.render());
    let _ = writeln!(out, "Fig. 13 co-occurrence heatmap:\n{}", f.fig13_heatmap.render());
    let _ = writeln!(
        out,
        "Fig. 12 XID 13 spatial (5 s-filtered):\n{}",
        f.fig12_xid13_spatial.filtered.render()
    );

    // §3.3–§4 SBE analyses.
    let _ = writeln!(out, "## Single-bit errors\n");
    let o = &f.fig14_15_offenders;
    let _ = writeln!(
        out,
        "{}",
        table(
            "Offender structure (Observation 10)",
            &[
                (
                    "cards with SBEs".into(),
                    format!("{} ({:.1}%)", o.cards_with_sbe, o.affected_fraction * 100.0)
                ),
                ("top-10 share".into(), format!("{:.0}%", o.top10_share * 100.0)),
                ("top-50 share".into(), format!("{:.0}%", o.top50_share * 100.0)),
                ("gini".into(), format!("{:.2}", o.gini)),
                (
                    "spatial CV (0/10/50 removed)".into(),
                    format!(
                        "{:.2} / {:.2} / {:.2}",
                        o.levels[0].spatial_cv, o.levels[1].spatial_cv, o.levels[2].spatial_cv
                    )
                ),
            ]
        )
    );
    let mut corr_rows = Vec::new();
    for m in JobMetric::ALL {
        corr_rows.push((
            m.label().to_string(),
            format!(
                "{:.2} all / {:.2} excl. top-10",
                f.fig16_19_correlation.spearman_of(m, false).unwrap_or(f64::NAN),
                f.fig16_19_correlation.spearman_of(m, true).unwrap_or(f64::NAN)
            ),
        ));
    }
    corr_rows.push((
        "user-level core-hours".into(),
        format!(
            "{:.2}",
            f.fig20_user.spearman_all.map(|r| r.r).unwrap_or(f64::NAN)
        ),
    ));
    let _ = writeln!(out, "{}", table("Spearman vs per-job SBEs (Figs. 16–20)", &corr_rows));
    let _ = writeln!(
        out,
        "{}",
        table(
            "SBE by structure (Observation 11)",
            &f.sbe_by_structure
                .iter()
                .map(|(m, c)| (m.label().to_string(), c.to_string()))
                .collect::<Vec<_>>()
        )
    );

    // §4 granularity limitation.
    let g = &f.granularity;
    let _ = writeln!(
        out,
        "{}",
        table(
            "Attribution granularity (§4: no per-aprun SBE counts)",
            &[
                ("jobs with SBEs".into(), g.jobs_with_sbe.to_string()),
                (
                    "multi-aprun among them".into(),
                    g.multi_aprun_jobs_with_sbe.to_string()
                ),
                (
                    "SBE volume ambiguous below job level".into(),
                    format!("{:.0}%", g.ambiguous_fraction() * 100.0)
                ),
            ]
        )
    );

    // Registry.
    let _ = writeln!(out, "## Paper-shape checks\n");
    for e in evaluate_all(&f) {
        let _ = writeln!(out, "[{}] {:<6} {}", e.verdict, e.id, e.measured);
    }

    out
}

/// Renders the report directly from figures (no study handle), losing
/// only the header metadata.
pub fn figures_summary(f: &Figures) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", f.fig02_dbe_monthly.render());
    let _ = writeln!(out, "{}", f.fig13_heatmap.render());
    for e in evaluate_all(f) {
        let _ = writeln!(out, "[{}] {:<6} {}", e.verdict, e.id, e.measured);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    #[test]
    fn report_renders_all_sections() {
        let study = Study::new(StudyConfig::quick(30, 3)).run();
        let r = full_report(&study);
        for needle in [
            "# Titan GPU reliability study",
            "## Hardware errors",
            "## Software / firmware errors",
            "## Single-bit errors",
            "## Paper-shape checks",
            "MTBF",
            "top-10 share",
            "Spearman vs per-job SBEs",
        ] {
            assert!(r.contains(needle), "missing {needle:?}");
        }
        // Registry lines present with verdicts.
        assert!(r.contains("[PASS]") || r.contains("[WEAK]") || r.contains("[FAIL]"));
    }

    #[test]
    fn figures_summary_smaller_than_full() {
        let study = Study::new(StudyConfig::quick(20, 4)).run();
        let full = full_report(&study);
        let summary = figures_summary(&study.figures());
        assert!(summary.len() < full.len());
        assert!(summary.contains("Monthly frequency"));
    }
}
