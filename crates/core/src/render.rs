//! ASCII rendering of figures (terminal-friendly reproduction of the
//! paper's plots) plus CSV export helpers.

use titan_analysis::cooccurrence::Heatmap;
use titan_analysis::timeseries::MonthlySeries;
use titan_gpu::GpuErrorKind;
use titan_topology::grid::CageTally;
use titan_topology::{CabinetGrid, COLS, ROWS};

/// ASCII rendering for figure data.
pub trait Render {
    /// Renders the figure as terminal text.
    fn render(&self) -> String;
}

/// Horizontal bar chart of a monthly series.
impl Render for MonthlySeries {
    fn render(&self) -> String {
        let mut out = String::new();
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        out.push_str(&format!(
            "Monthly frequency of {:?} (total {})\n",
            self.kind,
            self.total()
        ));
        for (label, &c) in self.labels.iter().zip(&self.counts) {
            let bar = "#".repeat((c * 48 / max) as usize);
            out.push_str(&format!("{label:>7} | {bar:<48} {c}\n"));
        }
        out
    }
}

/// Shade-character heatmap of the 25 × 8 cabinet grid, oriented like
/// Fig. 1 (rows of cabinets).
impl Render for CabinetGrid {
    fn render(&self) -> String {
        const SHADES: [char; 7] = [' ', '.', ':', '-', '=', '#', '@'];
        let max = self
            .cells()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut out = String::new();
        out.push_str("      col 0  1  2  3  4  5  6  7\n");
        for r in 0..ROWS {
            out.push_str(&format!("row {r:>2} |"));
            for c in 0..COLS {
                let v = self.get(r, c);
                let idx = ((v / max) * (SHADES.len() - 1) as f64).round() as usize;
                out.push_str(&format!(" {} ", SHADES[idx.min(SHADES.len() - 1)]));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "total {:.0}  spatial CV {:.2}  even-column bias {:.2}\n",
            self.total(),
            self.spatial_cv(),
            self.even_column_bias().unwrap_or(1.0)
        ));
        out
    }
}

/// Bar chart of per-cage tallies (bottom to top, as racked).
impl Render for CageTally {
    fn render(&self) -> String {
        let max = self.by_cage.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        let names = ["cage 0 (bottom)", "cage 1 (middle)", "cage 2 (top)   "];
        let mut out = String::new();
        for (i, name) in names.iter().enumerate().rev() {
            let v = self.by_cage[i];
            let bar = "#".repeat(((v / max) * 40.0).round() as usize);
            out.push_str(&format!("{name} | {bar:<40} {v:.0}\n"));
        }
        out
    }
}

/// Numeric matrix with kind labels, like Fig. 13.
impl Render for Heatmap {
    fn render(&self) -> String {
        let label = |k: GpuErrorKind| -> String {
            match k.xid() {
                Some(x) => format!("{x:>3}"),
                None => "OTB".to_string(),
            }
        };
        let mut out = String::new();
        out.push_str("prev\\next ");
        for &k in &self.kinds {
            out.push_str(&format!("{} ", label(k)));
        }
        out.push('\n');
        for (i, &k) in self.kinds.iter().enumerate() {
            out.push_str(&format!("     {}  ", label(k)));
            for j in 0..self.kinds.len() {
                let f = self.fraction[i][j];
                if f == 0.0 {
                    out.push_str("  . ");
                } else {
                    out.push_str(&format!("{:>3.0} ", f * 100.0));
                }
            }
            out.push_str(&format!("  (n={})\n", self.totals[i]));
        }
        out.push_str("(values are percentages; '.' = zero)\n");
        out
    }
}

/// One CSV line per month: `month,count`.
pub fn monthly_csv(series: &MonthlySeries) -> String {
    let mut out = String::from("month,count\n");
    for (l, c) in series.labels.iter().zip(&series.counts) {
        out.push_str(&format!("{l},{c}\n"));
    }
    out
}

/// CSV of a cabinet grid: `row,col,value`.
pub fn grid_csv(grid: &CabinetGrid) -> String {
    let mut out = String::from("row,col,value\n");
    for r in 0..ROWS {
        for c in 0..COLS {
            out.push_str(&format!("{r},{c},{}\n", grid.get(r, c)));
        }
    }
    out
}

/// CSV of two aligned normalized series (the Figs. 16–19 panels):
/// `index,metric,sbe`.
pub fn series_csv(metric: &[f64], sbe: &[f64]) -> String {
    let mut out = String::from("index,metric,sbe\n");
    for (i, (m, s)) in metric.iter().zip(sbe).enumerate() {
        out.push_str(&format!("{i},{m},{s}\n"));
    }
    out
}

/// A plain two-column ASCII table.
pub fn table(title: &str, rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(8);
    let mut out = format!("{title}\n");
    for (k, v) in rows {
        out.push_str(&format!("  {k:<w$}  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_conlog::time::StudyCalendar;
    use titan_gpu::GpuErrorKind;

    fn series() -> MonthlySeries {
        MonthlySeries {
            kind: GpuErrorKind::DoubleBitError,
            counts: (0..21).map(|i| (i % 7) as u64).collect(),
            labels: StudyCalendar.month_labels(),
        }
    }

    #[test]
    fn monthly_render_has_all_months() {
        let text = series().render();
        assert_eq!(text.lines().count(), 22); // title + 21 months
        assert!(text.contains("Jun'13"));
        assert!(text.contains("Feb'15"));
    }

    #[test]
    fn monthly_csv_shape() {
        let csv = monthly_csv(&series());
        assert_eq!(csv.lines().count(), 22);
        assert!(csv.starts_with("month,count\n"));
    }

    #[test]
    fn grid_render_dimensions() {
        let mut g = CabinetGrid::new();
        *g.get_mut(0, 0) = 5.0;
        let text = g.render();
        assert_eq!(text.lines().count(), 27); // header + 25 rows + footer
        let csv = grid_csv(&g);
        assert_eq!(csv.lines().count(), 201);
    }

    #[test]
    fn cage_render_order_top_first() {
        let t = CageTally {
            by_cage: [1.0, 2.0, 3.0],
        };
        let text = t.render();
        let first = text.lines().next().unwrap();
        assert!(first.contains("top"), "{first}");
    }

    #[test]
    fn heatmap_render_marks_zeros() {
        let h = titan_analysis::cooccurrence::cooccurrence_heatmap(&[]);
        let text = h.render();
        assert!(text.contains("  . "));
        assert!(text.contains("OTB"));
    }

    #[test]
    fn table_alignment() {
        let t = table(
            "Things",
            &[("a".into(), "1".into()), ("longer-key".into(), "2".into())],
        );
        assert!(t.contains("longer-key"));
        assert!(t.starts_with("Things\n"));
    }

    #[test]
    fn series_csv_pairs() {
        let csv = series_csv(&[1.0, 2.0], &[0.5, 0.7]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("1,2,0.7"));
    }
}
