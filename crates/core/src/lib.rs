//! # titan-reliability
//!
//! Top-level API of the Titan GPU reliability study reproduction.
//!
//! ```no_run
//! use titan_reliability::render::Render;
//! use titan_reliability::{Study, StudyConfig};
//!
//! // Simulate the full Jun'13–Feb'15 window and regenerate every figure.
//! let study = Study::new(StudyConfig::default()).run();
//! let figures = study.figures();
//! println!("{}", figures.fig02_dbe_monthly.render());
//! println!("DBE MTBF: {:?} hours", figures.fig02_mtbf_hours);
//! ```
//!
//! The pipeline is end-to-end honest: the simulator renders its console
//! stream to *text*, and the study re-parses that text before analysis —
//! the analysis only ever sees what an operator's scripts would see.
//!
//! * [`study`] — the [`Study`] runner and its parsed data bundle.
//! * [`figures`] — every table/figure of the paper computed from the
//!   data bundle (rayon-parallel across independent figures).
//! * [`expectations`] — the paper-vs-measured registry behind
//!   EXPERIMENTS.md.
//! * [`render`] — ASCII bar charts, grids, and tables; CSV/JSON export.
//! * [`report`] — the consolidated operator report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expectations;
pub mod figures;
pub mod render;
pub mod report;
pub mod study;

pub use expectations::{evaluate_all, Expectation, Verdict};
pub use report::full_report;
pub use figures::Figures;
pub use study::{Study, StudyConfig, StudyData};
