//! The [`Study`] runner: simulate → render logs → re-parse → analyze.

use serde::{Deserialize, Serialize};
use titan_conlog::format::{parse_stream, ParseStats};
use titan_conlog::{Aprun, ConsoleEvent, JobRecord};
use titan_nvsmi::{GpuSnapshot, JobEccDelta};
use titan_obs::Obs;
use titan_sim::{SimConfig, SimOutput, Simulator};

use crate::figures::Figures;

/// Study configuration: a thin veneer over [`SimConfig`] with the
/// study-level choices exposed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StudyConfig {
    /// Underlying simulation config.
    pub sim: SimConfig,
    /// When true (default false), skip the render→parse round trip and
    /// feed simulator events straight to analysis. The round trip is the
    /// honest path; the shortcut exists for benchmarking the analysis in
    /// isolation.
    pub skip_text_roundtrip: bool,
}

impl StudyConfig {
    /// Quick config for tests: `days` of simulated operation.
    pub fn quick(days: u64, seed: u64) -> Self {
        StudyConfig {
            sim: SimConfig::quick(days, seed),
            skip_text_roundtrip: false,
        }
    }
}

/// The observable data bundle the analysis runs on.
#[derive(Debug, Clone, Default)]
pub struct StudyData {
    /// Console events (parsed back from rendered text unless the
    /// shortcut was taken).
    pub console: Vec<ConsoleEvent>,
    /// Batch job records (parsed back from the job log text).
    pub jobs: Vec<JobRecord>,
    /// Per-job SBE deltas from the snapshot framework.
    pub job_sbe: Vec<JobEccDelta>,
    /// Aprun (ALPS) log records.
    pub apruns: Vec<Aprun>,
    /// End-of-study fleet snapshots.
    pub snapshots: Vec<GpuSnapshot>,
    /// Console parse statistics (skipped lines indicate format drift).
    pub console_parse: ParseStats,
    /// Job-log lines that failed to parse.
    pub job_parse_errors: u64,
}

/// A runnable study.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
}

/// A completed study: raw simulator output plus the re-parsed bundle.
#[derive(Debug, Clone)]
pub struct CompletedStudy {
    /// The configuration used.
    pub config: StudyConfig,
    /// Raw simulator output (contains ground truth — tests only).
    pub sim: SimOutput,
    /// The observable bundle the analysis uses.
    pub data: StudyData,
}

impl Study {
    /// Creates a study.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Runs simulation and the log round trip.
    pub fn run(&self) -> CompletedStudy {
        self.run_with_obs(&mut Obs::disabled())
    }

    /// [`run`](Self::run) with a telemetry sink threaded through the
    /// engine. The sink only observes (see `Simulator::run_with`), so
    /// this produces the same [`CompletedStudy`] as `run()`.
    pub fn run_with_obs(&self, obs: &mut Obs) -> CompletedStudy {
        let sim = Simulator::new(self.config.sim.clone())
            .expect("config validated by construction")
            .run_with(obs);
        self.complete_from_sim(sim, obs)
    }

    /// The post-simulation half of a study: render → parse → bundle.
    /// Split out so checkpoint/resume paths (which drive the engine
    /// themselves, see `titan-runner`) produce the same
    /// [`CompletedStudy`] as a straight-through [`run`](Self::run).
    pub fn complete_from_sim(&self, sim: SimOutput, obs: &mut Obs) -> CompletedStudy {
        obs.phase("study:render_parse_logs");
        let data = if self.config.skip_text_roundtrip {
            StudyData {
                console: sim.console.clone(),
                jobs: sim.jobs.clone(),
                job_sbe: sim.job_sbe.clone(),
                apruns: sim.apruns.clone(),
                snapshots: sim.final_snapshots.clone(),
                console_parse: ParseStats {
                    parsed: sim.console.len() as u64,
                    skipped: 0,
                },
                job_parse_errors: 0,
            }
        } else {
            // The honest path: render to text, parse back.
            let console_text = sim.render_console_log();
            let (console, console_parse) = parse_stream(&console_text);
            let job_text = sim.render_job_log();
            let mut jobs = Vec::new();
            let mut job_parse_errors = 0u64;
            for line in job_text.lines() {
                match JobRecord::parse(line) {
                    Ok(j) => jobs.push(j),
                    Err(_) => job_parse_errors += 1,
                }
            }
            let aprun_text = sim.render_aprun_log();
            let apruns: Vec<Aprun> =
                aprun_text.lines().filter_map(Aprun::parse).collect();
            StudyData {
                console,
                jobs,
                job_sbe: sim.job_sbe.clone(),
                apruns,
                snapshots: sim.final_snapshots.clone(),
                console_parse,
                job_parse_errors,
            }
        };
        CompletedStudy {
            config: self.config.clone(),
            sim,
            data,
        }
    }
}

impl CompletedStudy {
    /// Computes every figure from the observable bundle.
    pub fn figures(&self) -> Figures {
        Figures::compute(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_lossless() {
        let study = Study::new(StudyConfig::quick(20, 42)).run();
        // Every rendered console line must parse back.
        assert_eq!(study.data.console_parse.skipped, 0);
        assert_eq!(study.data.job_parse_errors, 0);
        assert_eq!(study.data.console, study.sim.console);
        assert_eq!(study.data.jobs.len(), study.sim.jobs.len());
        for (a, b) in study.data.jobs.iter().zip(&study.sim.jobs) {
            assert_eq!(a.apid, b.apid);
            // The job-log wire format stores nodes as sorted id ranges, so
            // allocation order is normalized away; compare as sets.
            let mut bn = b.nodes.clone();
            bn.sort_unstable();
            assert_eq!(a.nodes, bn);
            assert!((a.gpu_core_hours - b.gpu_core_hours).abs() < 1e-3);
        }
    }

    #[test]
    fn shortcut_matches_roundtrip() {
        let mut cfg = StudyConfig::quick(15, 7);
        let honest = Study::new(cfg.clone()).run();
        cfg.skip_text_roundtrip = true;
        let fast = Study::new(cfg).run();
        assert_eq!(honest.data.console, fast.data.console);
    }
}
