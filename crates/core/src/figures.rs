//! Every table and figure of the paper, computed from the observable
//! data bundle. Independent figure families run in parallel under rayon.

use serde::{Deserialize, Serialize};
use titan_analysis::consistency::{dbe_accounting, DbeAccounting};
use titan_analysis::cooccurrence::{cooccurrence_heatmap, Heatmap};
use titan_analysis::correlation::{job_sbe_correlations, CorrelationStudy};
use titan_analysis::interarrival::{retirement_delays, RetirementDelays};
use titan_analysis::offenders::{sbe_offender_analysis, OffenderAnalysis};
use titan_analysis::filtering::dedup_by_job;
use titan_analysis::granularity::{aprun_granularity, GranularityReport};
use titan_analysis::spatial::{
    cage_tally, incident_stripe, spatial_grid, spatial_with_filtering, IncidentStripe,
    SpatialFiltering,
};
use titan_analysis::timeseries::{burstiness, monthly_counts, mtbf_hours, MonthlySeries};
use titan_analysis::thermal::{thermal_survey, ThermalSurvey};
use titan_analysis::user_proxy::{user_level_correlation, UserStudy};
use titan_analysis::workload_charac::{workload_characterization, WorkloadCharacterization};
use titan_faults::calibration;
use titan_gpu::{GpuErrorKind, MemoryStructure};
use titan_topology::grid::CageTally;
use titan_topology::CabinetGrid;

use crate::study::StudyData;

/// Computed figure set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figures {
    /// Fig. 2: monthly DBE frequency.
    pub fig02_dbe_monthly: MonthlySeries,
    /// Observation 1: DBE MTBF in hours.
    pub fig02_mtbf_hours: Option<f64>,
    /// DBE burstiness (should be near-Poisson: "not bursty in nature").
    pub fig02_burstiness: Option<f64>,

    /// Fig. 3(a): DBE cabinet grid.
    pub fig03_dbe_grid: CabinetGrid,
    /// Fig. 3(b): DBE per cage — (all events, distinct nodes).
    pub fig03_dbe_cage: (CageTally, CageTally),
    /// Fig. 3(c) + Observation 2: console/nvidia-smi DBE accounting and
    /// the per-structure breakdown.
    pub fig03_accounting: DbeAccounting,

    /// Fig. 4: monthly off-the-bus frequency.
    pub fig04_otb_monthly: MonthlySeries,
    /// Fig. 5: OTB cabinet grid.
    pub fig05_otb_grid: CabinetGrid,
    /// Fig. 5 inset: OTB per cage — (all, distinct).
    pub fig05_otb_cage: (CageTally, CageTally),

    /// Fig. 6: monthly ECC page retirement frequency.
    pub fig06_retire_monthly: MonthlySeries,
    /// Fig. 7: retirement cabinet grid.
    pub fig07_retire_grid: CabinetGrid,
    /// Fig. 7 inset: retirement per cage.
    pub fig07_retire_cage: (CageTally, CageTally),

    /// Fig. 8: retirement delay after DBE.
    pub fig08_delays: RetirementDelays,

    /// Fig. 9: monthly series for XIDs 31, 32, 43, 44 (+38, 42 for the
    /// rare-error observations). Job-wide kinds (31, 32) are counted at
    /// *incident* granularity — the paper's 5 s filtering collapses the
    /// per-node re-reports before counting.
    pub fig09_xid_monthly: Vec<MonthlySeries>,
    /// Fig. 10: monthly XID 13.
    pub fig10_xid13_monthly: MonthlySeries,
    /// XID 13 burstiness (Observation 6).
    pub fig10_xid13_burstiness: Option<f64>,
    /// Driver-XID burstiness for contrast (XID 43).
    pub fig10_xid43_burstiness: Option<f64>,
    /// Fig. 11: monthly XID 59 and 62.
    pub fig11_uchalt_monthly: Vec<MonthlySeries>,

    /// Fig. 12: XID 13 spatial distribution under the three filterings.
    pub fig12_xid13_spatial: SpatialFiltering,

    /// Fig. 12's striping claim scored per incident (the aggregate
    /// panels cancel when incidents of opposite column parity meet —
    /// see [`incident_stripe`]).
    pub fig12_incident_stripe: Option<IncidentStripe>,

    /// Fig. 13: the 300 s co-occurrence heatmap (top panel; call
    /// [`Heatmap::without_diagonal`] for the bottom).
    pub fig13_heatmap: Heatmap,

    /// Figs. 14–15: the SBE offender analysis.
    pub fig14_15_offenders: OffenderAnalysis,

    /// Figs. 16–19: job-level utilization↔SBE correlations.
    pub fig16_19_correlation: CorrelationStudy,

    /// Fig. 20: user-level correlation.
    pub fig20_user: UserStudy,

    /// Fig. 21: workload characterization.
    pub fig21_workload: WorkloadCharacterization,

    /// §4: SBE counts by structure across all job deltas (L2-dominance
    /// check for Observation 11).
    pub sbe_by_structure: Vec<(MemoryStructure, u64)>,

    /// §3.1: the nvidia-smi-derived cage temperature gradient.
    pub thermal: ThermalSurvey,

    /// §4: how much SBE volume is unattributable below job granularity.
    pub granularity: GranularityReport,
}

impl Figures {
    /// Computes everything from a data bundle. The heavier, independent
    /// figure families are evaluated on rayon's pool.
    pub fn compute(data: &StudyData) -> Figures {
        use GpuErrorKind::*;

        let console = &data.console;

        // The four heavyweight analyses are mutually independent — fan
        // them out. Everything else is cheap linear scans.
        let ((offenders, correlation), (user, heatmap)) = rayon::join(
            || {
                rayon::join(
                    || sbe_offender_analysis(&data.snapshots),
                    || job_sbe_correlations(&data.jobs, &data.job_sbe, &data.snapshots),
                )
            },
            || {
                rayon::join(
                    || user_level_correlation(&data.jobs, &data.job_sbe, &data.snapshots),
                    || cooccurrence_heatmap(console),
                )
            },
        );

        let mut sbe_by_structure: Vec<(MemoryStructure, u64)> = MemoryStructure::ECC_COUNTED
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let total = data
                    .job_sbe
                    .iter()
                    .map(|d| d.per_structure_sbe.get(i).copied().unwrap_or(0))
                    .sum();
                (m, total)
            })
            .collect();
        sbe_by_structure.sort_by_key(|&(_, c)| std::cmp::Reverse(c));

        Figures {
            fig02_dbe_monthly: monthly_counts(console, DoubleBitError),
            fig02_mtbf_hours: mtbf_hours(console, DoubleBitError),
            fig02_burstiness: burstiness(console, DoubleBitError),

            fig03_dbe_grid: spatial_grid(console, DoubleBitError, false),
            fig03_dbe_cage: cage_tally(console, DoubleBitError),
            fig03_accounting: dbe_accounting(console, &data.snapshots),

            fig04_otb_monthly: monthly_counts(console, OffTheBus),
            fig05_otb_grid: spatial_grid(console, OffTheBus, false),
            fig05_otb_cage: cage_tally(console, OffTheBus),

            fig06_retire_monthly: monthly_counts(console, EccPageRetirement),
            fig07_retire_grid: spatial_grid(console, EccPageRetirement, false),
            fig07_retire_cage: cage_tally(console, EccPageRetirement),

            fig08_delays: retirement_delays(console, calibration::retirement_xid_introduced()),

            fig09_xid_monthly: [
                GpuMemoryPageFault,
                PushBufferStream,
                GpuStoppedProcessing,
                ContextSwitchFault,
                DriverFirmware,
                VideoProcessorSw,
            ]
            .iter()
            .map(|&k| {
                if k.user_application_possible() {
                    // Incident granularity: collapse the per-node job
                    // re-reports with the paper's 5 s filter first.
                    let deduped = dedup_by_job(console, k, 5);
                    monthly_counts(&deduped.parents, k)
                } else {
                    monthly_counts(console, k)
                }
            })
            .collect(),
            fig10_xid13_monthly: monthly_counts(console, GraphicsEngineException),
            fig10_xid13_burstiness: burstiness(console, GraphicsEngineException),
            fig10_xid43_burstiness: burstiness(console, GpuStoppedProcessing),
            fig11_uchalt_monthly: [MicrocontrollerHaltOld, MicrocontrollerHaltNew]
                .iter()
                .map(|&k| monthly_counts(console, k))
                .collect(),

            fig12_xid13_spatial: spatial_with_filtering(console, GraphicsEngineException),
            fig12_incident_stripe: incident_stripe(console, GraphicsEngineException, 5),

            fig13_heatmap: heatmap,
            fig14_15_offenders: offenders,
            fig16_19_correlation: correlation,
            fig20_user: user,
            fig21_workload: workload_characterization(&data.jobs),

            sbe_by_structure,

            thermal: thermal_survey(&data.snapshots),
            granularity: aprun_granularity(&data.apruns, &data.job_sbe),
        }
    }

    /// Monthly series for a Fig. 9 kind, if computed.
    pub fn fig09_series(&self, kind: GpuErrorKind) -> Option<&MonthlySeries> {
        self.fig09_xid_monthly.iter().find(|s| s.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    #[test]
    fn figures_compute_on_quick_study() {
        let study = Study::new(StudyConfig::quick(30, 99)).run();
        let f = study.figures();
        // Console-derived monthly totals must match event counts.
        let dbe_total: u64 = f.fig02_dbe_monthly.total();
        let dbe_events = study
            .data
            .console
            .iter()
            .filter(|e| e.kind == GpuErrorKind::DoubleBitError)
            .count() as u64;
        assert_eq!(dbe_total, dbe_events);
        // Grid totals match series totals.
        assert_eq!(f.fig03_dbe_grid.total() as u64, dbe_total);
        // XID 42 never occurs.
        let x42 = f.fig09_series(GpuErrorKind::VideoProcessorSw).unwrap();
        assert_eq!(x42.total(), 0);
        // Structure table covers the ECC-counted set.
        assert_eq!(f.sbe_by_structure.len(), 5);
    }

    #[test]
    fn sbe_structure_table_sorted_desc() {
        let study = Study::new(StudyConfig::quick(20, 5)).run();
        let f = study.figures();
        assert!(f
            .sbe_by_structure
            .windows(2)
            .all(|w| w[0].1 >= w[1].1));
    }
}
