//! The paper-vs-measured registry: every table/figure claim as an
//! executable check, powering EXPERIMENTS.md.
//!
//! Checks run against [`Figures`] only — the observable side — and each
//! records the paper's claim, our measured value, and a verdict. Bands
//! are deliberately wide: the substrate is a calibrated simulator, so the
//! *shape* (orderings, ratios, crossovers, correlation bands) is the
//! contract, not absolute counts.

use serde::{Deserialize, Serialize};
use titan_analysis::correlation::JobMetric;
use titan_analysis::spatial::IncidentStripe;
use titan_gpu::{GpuErrorKind, MemoryStructure};

use crate::figures::Figures;

/// Outcome of one expectation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Shape reproduced inside the band.
    Pass,
    /// Direction right, magnitude outside the band.
    Weak,
    /// Shape not reproduced.
    Fail,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Pass => "PASS",
            Verdict::Weak => "WEAK",
            Verdict::Fail => "FAIL",
        })
    }
}

/// One checked expectation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expectation {
    /// Experiment id from DESIGN.md (e.g. "F2", "F13").
    pub id: String,
    /// What the paper reports.
    pub paper: String,
    /// What we measured on this run.
    pub measured: String,
    /// Verdict.
    pub verdict: Verdict,
}

fn exp(id: &str, paper: &str, measured: String, verdict: Verdict) -> Expectation {
    Expectation {
        id: id.to_string(),
        paper: paper.to_string(),
        measured,
        verdict,
    }
}

fn band(value: f64, pass: std::ops::Range<f64>, weak: std::ops::Range<f64>) -> Verdict {
    if pass.contains(&value) {
        Verdict::Pass
    } else if weak.contains(&value) {
        Verdict::Weak
    } else {
        Verdict::Fail
    }
}

/// Runs every expectation against a computed figure set.
pub fn evaluate_all(f: &Figures) -> Vec<Expectation> {
    let mut out = Vec::new();

    // ---- F2 / Observation 1: DBE MTBF and non-burstiness -------------
    let mtbf = f.fig02_mtbf_hours.unwrap_or(f64::NAN);
    out.push(exp(
        "F2",
        "DBE MTBF ≈ 160 h (one per week); not bursty",
        format!("MTBF {mtbf:.0} h over {} DBEs", f.fig02_dbe_monthly.total()),
        band(mtbf, 100.0..260.0, 60.0..400.0),
    ));
    // Vendor-datasheet comparison (§3.1).
    let datasheet_fleet_mtbf = titan_faults::calibration::VENDOR_DATASHEET_DEVICE_MTBF_HOURS
        / titan_topology::COMPUTE_NODES as f64;
    out.push(exp(
        "O1b",
        "field MTBF significantly better than the vendor-datasheet estimate (acceptance tests + matured architecture)",
        format!(
            "measured {mtbf:.0} h vs datasheet-implied {datasheet_fleet_mtbf:.0} h fleet MTBF"
        ),
        if mtbf > 2.0 * datasheet_fleet_mtbf {
            Verdict::Pass
        } else if mtbf > datasheet_fleet_mtbf {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    let b = f.fig02_burstiness.unwrap_or(f64::NAN);
    out.push(exp(
        "F2b",
        "DBE arrivals near-Poisson (no bursts)",
        format!("burstiness {b:.2}"),
        band(b, -0.25..0.25, -0.45..0.45),
    ));

    // ---- F3 -----------------------------------------------------------
    let (all_cage, distinct_cage) = &f.fig03_dbe_cage;
    let top_ratio_all = all_cage.by_cage[2] / all_cage.by_cage[0].max(1.0);
    let top_ratio_distinct = distinct_cage.by_cage[2] / distinct_cage.by_cage[0].max(1.0);
    out.push(exp(
        "F3b",
        "DBEs favor the upper (hotter) cage; trend stronger for distinct cards",
        format!(
            "cage counts {:?}; top/bottom all {:.2}, distinct {:.2}",
            all_cage.by_cage, top_ratio_all, top_ratio_distinct
        ),
        if all_cage.top_heavy() {
            Verdict::Pass
        } else if top_ratio_all > 0.8 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    let dm = f.fig03_accounting.device_memory_fraction;
    out.push(exp(
        "F3c",
        "86% of DBEs in device memory, 14% in the register file",
        format!(
            "device memory {:.0}%, register file {:.0}%",
            dm * 100.0,
            (1.0 - dm) * 100.0
        ),
        band(dm, 0.78..0.93, 0.65..0.98),
    ));

    // ---- Observation 2 --------------------------------------------------
    out.push(exp(
        "O2",
        "nvidia-smi reports fewer DBEs than the console log; some cards show DBE > SBE",
        format!(
            "console {} vs nvidia-smi {}; {} cards with DBE>SBE",
            f.fig03_accounting.console_dbe,
            f.fig03_accounting.nvsmi_dbe,
            f.fig03_accounting.cards_dbe_exceeds_sbe
        ),
        if f.fig03_accounting.nvsmi_undercounts() && f.fig03_accounting.cards_dbe_exceeds_sbe > 0 {
            Verdict::Pass
        } else if f.fig03_accounting.nvsmi_undercounts() {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F4 / Observation 4 -------------------------------------------
    // Dec'13 is study month 6; the soldering campaign lands there.
    let otb = &f.fig04_otb_monthly;
    let before = otb.total_before(7).max(0);
    let after = otb.total_from(7);
    out.push(exp(
        "F4",
        "off-the-bus dominant before Dec 2013, negligible after soldering",
        format!("{before} before Jan'14 vs {after} after"),
        if before >= 10 * after.max(1) && before > 20 {
            Verdict::Pass
        } else if before > 2 * after.max(1) {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    let (otb_all, otb_distinct) = &f.fig05_otb_cage;
    let repeat_ratio = otb_all.total() / otb_distinct.total().max(1.0);
    out.push(exp(
        "F5",
        "OTB favors upper cages; all≈distinct (no card repeats)",
        format!(
            "cage {:?}; events/distinct-cards ratio {:.2}",
            otb_all.by_cage, repeat_ratio
        ),
        if otb_all.top_heavy() && repeat_ratio < 1.05 {
            Verdict::Pass
        } else if repeat_ratio < 1.2 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F6 -------------------------------------------------------------
    let retire = &f.fig06_retire_monthly;
    out.push(exp(
        "F6",
        "ECC page retirement appears only from Jan 2014",
        format!(
            "{} before Jan'14, {} from Jan'14",
            retire.total_before(7),
            retire.total_from(7)
        ),
        if retire.total_before(7) == 0 && retire.total_from(7) > 0 {
            Verdict::Pass
        } else if retire.total_before(7) == 0 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F8 --------------------------------------------------------------
    let d = &f.fig08_delays;
    out.push(exp(
        "F8",
        "retirements cluster within 10 min of the DBE (18 vs 1 in 10min–6h); late cases = two-SBE path; some DBE pairs see no retirement",
        format!(
            "≤10min {}, 10min–6h {}, later {}, no-DBE {}, DBE pairs w/o retirement {}",
            d.within_10min, d.min10_to_6h, d.later, d.no_preceding_dbe,
            d.dbe_pairs_without_retirement
        ),
        if d.prompt_dominates()
            && d.dbe_pairs_without_retirement > 0
            && (d.later + d.no_preceding_dbe) > 0
        {
            Verdict::Pass
        } else if d.prompt_dominates() {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F9 ---------------------------------------------------------------
    let total_of = |k: GpuErrorKind| {
        f.fig09_series(k).map(|s| s.total()).unwrap_or(0)
    };
    let x32 = total_of(GpuErrorKind::PushBufferStream);
    let x38 = total_of(GpuErrorKind::DriverFirmware);
    let x42 = total_of(GpuErrorKind::VideoProcessorSw);
    let x43 = total_of(GpuErrorKind::GpuStoppedProcessing);
    let x44 = total_of(GpuErrorKind::ContextSwitchFault);
    out.push(exp(
        "F9",
        "XID 32 & 38 occur <10 times; XID 42 never; XID 43/44 are the frequent driver errors",
        format!("x32={x32} x38={x38} x42={x42} x43={x43} x44={x44}"),
        if x42 == 0 && x32 < 15 && x38 < 15 && x43 > x32 && x44 > x32 {
            Verdict::Pass
        } else if x42 == 0 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F10 / Observation 6 ------------------------------------------------
    let b13 = f.fig10_xid13_burstiness.unwrap_or(f64::NAN);
    let b43 = f.fig10_xid43_burstiness.unwrap_or(f64::NAN);
    out.push(exp(
        "F10",
        "XID 13 is frequent and bursty; driver XIDs are steadier",
        format!(
            "xid13 total {} burstiness {b13:.2}; xid43 burstiness {b43:.2}",
            f.fig10_xid13_monthly.total()
        ),
        if b13 > b43 + 0.1 && b13 > 0.3 {
            Verdict::Pass
        } else if b13 > b43 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F11 -------------------------------------------------------------------
    let x59 = &f.fig11_uchalt_monthly[0];
    let x62 = &f.fig11_uchalt_monthly[1];
    // Driver update lands Jun'14 = study month 12.
    out.push(exp(
        "F11",
        "XID 59 under the old driver only; XID 62 appears after the driver update",
        format!(
            "x59: {} before / {} after Jun'14; x62: {} before / {} after",
            x59.total_before(12),
            x59.total_from(12),
            x62.total_before(12),
            x62.total_from(12)
        ),
        if x59.total_from(12) == 0 && x62.total_before(12) == 0 && x62.total_from(12) > 0 {
            Verdict::Pass
        } else if x62.total_from(12) > x62.total_before(12) {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F12 ----------------------------------------------------------------------
    // Striping signature, scored per incident. The aggregate panel
    // contrast |even − odd|/total is biased toward zero: the cabling
    // fold gives every job one of two column parities (outbound jobs
    // stripe 0/2/4/6, return-run jobs 7/5/3/1), so two incidents of
    // opposite parity cancel in the summed grid even though each one
    // stripes perfectly — on some seeds the global statistic collapsed
    // to ~0 while every footprint striped. `incident_stripe` scores
    // each incident's own footprint against a size-matched uniform
    // null, which no cross-incident mixture can cancel.
    let un = f.fig12_xid13_spatial.unfiltered.stripe_contrast().unwrap_or(0.0);
    let ch = f.fig12_xid13_spatial.children.stripe_contrast().unwrap_or(0.0);
    let s = f.fig12_incident_stripe.unwrap_or(IncidentStripe {
        contrast: 0.0,
        null: 1.0,
        incidents: 0,
    });
    out.push(exp(
        "F12",
        "one incident's XID 13s stripe across alternate cabinets (folded torus); 5 s filtering keeps one event per job",
        format!(
            "per-incident stripe contrast {:.3} over {} incidents (size-matched uniform null ≈ {:.4}); aggregate panels: unfiltered {un:.3}, children {ch:.3}; child events {}",
            s.contrast,
            s.incidents,
            s.null,
            f.fig12_xid13_spatial.children.total()
        ),
        if s.contrast > 10.0 * s.null && f.fig12_xid13_spatial.children.total() > 0.0 {
            Verdict::Pass
        } else if s.contrast > 3.0 * s.null {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F13 -----------------------------------------------------------------------
    let h = &f.fig13_heatmap;
    let g = |a, b| h.get(a, b).unwrap_or(0.0);
    use GpuErrorKind::*;
    let p48_45 = g(DoubleBitError, PreemptiveCleanup);
    let p48_63 = g(DoubleBitError, EccPageRetirement);
    let p13_43 = g(GraphicsEngineException, GpuStoppedProcessing);
    let d13 = g(GraphicsEngineException, GraphicsEngineException);
    let iso_max = [OffTheBus, DriverFirmware, DoubleBitError, EccPageRetirement]
        .iter()
        .map(|&k| g(k, k))
        .fold(0.0f64, f64::max);
    out.push(exp(
        "F13",
        "48→45 and 48→63 likely; 13→43 likely; app XIDs repeat (hot diagonal); OTB/38/48/63 isolated",
        format!(
            "P(48→45)={p48_45:.2} P(48→63)={p48_63:.2} P(13→43)={p13_43:.2} diag(13)={d13:.2} max isolated diag={iso_max:.2}"
        ),
        if p48_45 > 0.3 && p13_43 > 0.25 && d13 > 0.4 && iso_max < 0.10 && p48_63 > 0.05 {
            Verdict::Pass
        } else if p48_45 > 0.2 && iso_max < 0.2 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F14 / Observation 10 ----------------------------------------------------------
    let o = &f.fig14_15_offenders;
    out.push(exp(
        "F14",
        "<5% of cards ever see an SBE; top offenders dominate; removing top 50 homogenizes",
        format!(
            "{} cards ({:.1}%) with SBEs; top-10 share {:.0}%; top-50 share {:.0}%; CV {:.2}→{:.2}→{:.2}",
            o.cards_with_sbe,
            o.affected_fraction * 100.0,
            o.top10_share * 100.0,
            o.top50_share * 100.0,
            o.levels[0].spatial_cv,
            o.levels[1].spatial_cv,
            o.levels[2].spatial_cv
        ),
        if o.affected_fraction < 0.07 && o.top10_share > 0.15 && o.skew_collapses() {
            Verdict::Pass
        } else if o.skew_collapses() {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    out.push(exp(
        "F15",
        "distinct SBE cards distribute uniformly across cages (location is not the driver)",
        format!(
            "distinct by cage at top-0/10/50: {:?} / {:?} / {:?}",
            o.levels[0].cage_distinct.by_cage,
            o.levels[1].cage_distinct.by_cage,
            o.levels[2].cage_distinct.by_cage
        ),
        if o.distinct_cards_uniform(1.5) {
            Verdict::Pass
        } else if o.distinct_cards_uniform(2.0) {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F16–F19 / Observations 11 & 12 ---------------------------------------------------
    let c = &f.fig16_19_correlation;
    let sp = |m, ex| c.spearman_of(m, ex).unwrap_or(f64::NAN);
    let max_mem = sp(JobMetric::MaxMemory, false);
    let tot_mem = sp(JobMetric::TotalMemory, false);
    out.push(exp(
        "F16/17",
        "memory consumption correlates weakly with SBEs (both coefficients < 0.5)",
        format!("Spearman: max mem {max_mem:.2}, total mem {tot_mem:.2}"),
        if max_mem.abs() < 0.5 && tot_mem.abs() < 0.55 {
            Verdict::Pass
        } else if max_mem.abs() < 0.6 && tot_mem.abs() < 0.65 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    let nodes_all = sp(JobMetric::Nodes, false);
    let nodes_ex = sp(JobMetric::Nodes, true);
    let ch_all = sp(JobMetric::GpuCoreHours, false);
    let ch_ex = sp(JobMetric::GpuCoreHours, true);
    out.push(exp(
        "F18",
        "node count correlates with SBEs (Spearman ≈ 0.57); weakens without top-10 offenders",
        format!("Spearman {nodes_all:.2} all → {nodes_ex:.2} excluding top-10"),
        if (0.35..0.85).contains(&nodes_all) && nodes_ex < nodes_all {
            Verdict::Pass
        } else if nodes_all > 0.25 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    out.push(exp(
        "F19",
        "GPU core-hours correlate with SBEs (Spearman ≈ 0.70); weakens without top-10 offenders",
        format!("Spearman {ch_all:.2} all → {ch_ex:.2} excluding top-10"),
        if (0.45..0.9).contains(&ch_all) && ch_ex < ch_all {
            Verdict::Pass
        } else if ch_all > 0.35 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));
    out.push(exp(
        "O11",
        "most SBEs strike the L2 cache, not device memory",
        format!(
            "structure totals: {}",
            f.sbe_by_structure
                .iter()
                .map(|(m, c)| format!("{}={}", m.label(), c))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        if f.sbe_by_structure.first().map(|&(m, _)| m) == Some(MemoryStructure::L2Cache) {
            Verdict::Pass
        } else {
            Verdict::Fail
        },
    ));

    // ---- F20 / Observation 13 ---------------------------------------------------------------
    let u = &f.fig20_user;
    let u_all = u.spearman_all.map(|r| r.r).unwrap_or(f64::NAN);
    let u_ex = u.spearman_excluding_top10.map(|r| r.r).unwrap_or(f64::NAN);
    out.push(exp(
        "F20",
        "user-level Spearman ≈ 0.80, higher than job-level; improves excluding top-10 offenders",
        format!("user Spearman {u_all:.2} (job-level core-hours {ch_all:.2}); excluding top-10 {u_ex:.2}"),
        if u_all > ch_all && u_all > 0.55 {
            Verdict::Pass
        } else if u_all > 0.45 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- §3.1 temperature derivation ------------------------------------------------
    out.push(exp(
        "T°",
        "uppermost-cage GPUs average more than 10 °F hotter than lowermost (per nvidia-smi)",
        format!(
            "cage means {:.1}/{:.1}/{:.1} °F; top-bottom Δ {:.1} °F",
            f.thermal.mean_by_cage[0],
            f.thermal.mean_by_cage[1],
            f.thermal.mean_by_cage[2],
            f.thermal.top_bottom_delta_f
        ),
        if f.thermal.matches_paper() && f.thermal.monotone() {
            Verdict::Pass
        } else if f.thermal.top_bottom_delta_f > 5.0 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    // ---- F21 / Observation 14 -----------------------------------------------------------------
    let w = &f.fig21_workload;
    out.push(exp(
        "F21",
        "memory-maximal jobs: below-average core-hours & node counts; longest jobs can be small; core-hours rise with nodes",
        format!(
            "mem-heavy core-hour ratio {:.2}, node ratio {:.2}; longest-small fraction {:.2}; Spearman(ch,nodes) {:.2}",
            w.memheavy_corehours_ratio,
            w.memheavy_nodes_ratio,
            w.longest_jobs_small_fraction,
            w.corehours_nodes_spearman.unwrap_or(f64::NAN)
        ),
        if w.memheavy_corehours_ratio < 1.0
            && w.memheavy_nodes_ratio < 1.0
            && w.longest_jobs_small_fraction > 0.5
            && w.corehours_nodes_spearman.unwrap_or(0.0) > 0.3
        {
            Verdict::Pass
        } else if w.memheavy_corehours_ratio < 1.0 {
            Verdict::Weak
        } else {
            Verdict::Fail
        },
    ));

    out
}

/// Renders the registry as a markdown table (the EXPERIMENTS.md body).
pub fn render_markdown(expectations: &[Expectation]) -> String {
    let mut out = String::from("| id | paper | measured | verdict |\n|---|---|---|---|\n");
    for e in expectations {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            e.id, e.paper, e.measured, e.verdict
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Pass.to_string(), "PASS");
        assert_eq!(Verdict::Weak.to_string(), "WEAK");
        assert_eq!(Verdict::Fail.to_string(), "FAIL");
    }

    #[test]
    fn band_logic() {
        assert_eq!(band(0.5, 0.0..1.0, -1.0..2.0), Verdict::Pass);
        assert_eq!(band(1.5, 0.0..1.0, -1.0..2.0), Verdict::Weak);
        assert_eq!(band(5.0, 0.0..1.0, -1.0..2.0), Verdict::Fail);
    }

    #[test]
    fn registry_covers_all_experiments() {
        let study = Study::new(StudyConfig::quick(30, 1)).run();
        let exps = evaluate_all(&study.figures());
        let ids: Vec<&str> = exps.iter().map(|e| e.id.as_str()).collect();
        for required in [
            "F2", "F3b", "F3c", "O2", "F4", "F5", "F6", "F8", "F9", "F10", "F11", "F12",
            "F13", "F14", "F15", "F16/17", "F18", "F19", "O11", "F20", "F21",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn markdown_renders_rows() {
        let exps = vec![exp("X", "claim", "value".to_string(), Verdict::Pass)];
        let md = render_markdown(&exps);
        assert!(md.contains("| X | claim | value | PASS |"));
    }
}
