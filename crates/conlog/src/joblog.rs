//! Batch-job log records — the job-log + RUR (resource utilization
//! reporting) data source of the paper's §4.
//!
//! Each completed batch job leaves one record carrying exactly the fields
//! the correlation study uses: user, node allocation, wall clock, GPU
//! core-hours, and maximum/total GPU memory consumption. Node allocations
//! are rendered as compact id ranges (`17-40,96,112-143`) because Titan
//! jobs routinely span thousands of nodes.

use serde::{Deserialize, Serialize};
use titan_topology::NodeId;

use crate::time::SimTime;

/// One completed batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// ALPS application id.
    pub apid: u64,
    /// Submitting user (the paper uses userID "as a proxy for the kind of
    /// application", Observation 13).
    pub user: u32,
    /// Allocated compute nodes.
    pub nodes: Vec<NodeId>,
    /// Job start.
    pub start: SimTime,
    /// Job end.
    pub end: SimTime,
    /// GPU core-hours consumed (busy cores × hours, summed over nodes).
    pub gpu_core_hours: f64,
    /// Peak per-node GPU memory footprint, bytes.
    pub max_memory_bytes: u64,
    /// Integrated GPU memory consumption, byte-hours across all nodes.
    pub total_memory_byte_hours: f64,
}

impl JobRecord {
    /// Wall-clock duration, seconds.
    pub fn wall_seconds(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node-hours (nodes × wall-clock hours).
    pub fn node_hours(&self) -> f64 {
        self.node_count() as f64 * self.wall_seconds() as f64 / 3600.0
    }

    /// Renders one job-log line.
    pub fn render(&self) -> String {
        format!(
            "JOB apid={} user={} start={} end={} gpu_core_hours={:.4} max_mem={} total_mem_bh={:.4} nodes={}",
            self.apid,
            self.user,
            self.start,
            self.end,
            self.gpu_core_hours,
            self.max_memory_bytes,
            self.total_memory_byte_hours,
            compress_ranges(&self.nodes),
        )
    }

    /// Parses a [`render`](Self::render)ed line.
    pub fn parse(line: &str) -> Result<JobRecord, JobLogError> {
        let err = |what: &str| JobLogError {
            what: what.to_string(),
            line: line.chars().take(120).collect(),
        };
        let rest = line.trim().strip_prefix("JOB ").ok_or_else(|| err("missing JOB prefix"))?;
        let mut apid = None;
        let mut user = None;
        let mut start = None;
        let mut end = None;
        let mut gch = None;
        let mut max_mem = None;
        let mut total_mem = None;
        let mut nodes = None;
        for field in rest.split_ascii_whitespace() {
            let (k, v) = field.split_once('=').ok_or_else(|| err("field without ="))?;
            match k {
                "apid" => apid = Some(v.parse().map_err(|_| err("bad apid"))?),
                "user" => user = Some(v.parse().map_err(|_| err("bad user"))?),
                "start" => start = Some(v.parse().map_err(|_| err("bad start"))?),
                "end" => end = Some(v.parse().map_err(|_| err("bad end"))?),
                "gpu_core_hours" => gch = Some(v.parse().map_err(|_| err("bad gpu_core_hours"))?),
                "max_mem" => max_mem = Some(v.parse().map_err(|_| err("bad max_mem"))?),
                "total_mem_bh" => {
                    total_mem = Some(v.parse().map_err(|_| err("bad total_mem_bh"))?)
                }
                "nodes" => nodes = Some(expand_ranges(v).ok_or_else(|| err("bad nodes"))?),
                _ => return Err(err("unknown field")),
            }
        }
        Ok(JobRecord {
            apid: apid.ok_or_else(|| err("missing apid"))?,
            user: user.ok_or_else(|| err("missing user"))?,
            nodes: nodes.ok_or_else(|| err("missing nodes"))?,
            start: start.ok_or_else(|| err("missing start"))?,
            end: end.ok_or_else(|| err("missing end"))?,
            gpu_core_hours: gch.ok_or_else(|| err("missing gpu_core_hours"))?,
            max_memory_bytes: max_mem.ok_or_else(|| err("missing max_mem"))?,
            total_memory_byte_hours: total_mem.ok_or_else(|| err("missing total_mem_bh"))?,
        })
    }
}

/// One `aprun` segment inside a batch job — ALPS launches these; §4 of
/// the paper: "the SBE counts can not be collected on a per aprun basis
/// instead it is collected on a job basis".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aprun {
    /// Owning job's apid.
    pub apid: u64,
    /// Index within the job script, 0-based.
    pub index: u32,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
}

impl Aprun {
    /// Segment length, seconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Renders one aprun log line (the ALPS log format stand-in).
    pub fn render(&self) -> String {
        format!(
            "APRUN apid={} idx={} start={} end={}",
            self.apid, self.index, self.start, self.end
        )
    }

    /// Parses a [`render`](Self::render)ed aprun line.
    pub fn parse(line: &str) -> Option<Aprun> {
        let rest = line.trim().strip_prefix("APRUN ")?;
        let mut apid = None;
        let mut index = None;
        let mut start = None;
        let mut end = None;
        for field in rest.split_ascii_whitespace() {
            let (k, v) = field.split_once('=')?;
            match k {
                "apid" => apid = v.parse().ok(),
                "idx" => index = v.parse().ok(),
                "start" => start = v.parse().ok(),
                "end" => end = v.parse().ok(),
                _ => return None,
            }
        }
        let (start, end) = (start?, end?);
        if end < start {
            return None; // inverted span: corrupt log line
        }
        Some(Aprun {
            apid: apid?,
            index: index?,
            start,
            end,
        })
    }
}

/// Job-log parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLogError {
    /// What was wrong.
    pub what: String,
    /// Prefix of the offending line.
    pub line: String,
}

impl std::fmt::Display for JobLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job log parse error ({}) in {:?}", self.what, self.line)
    }
}

impl std::error::Error for JobLogError {}

/// Compresses sorted-or-not node ids to `a-b,c,d-e` ranges.
pub fn compress_ranges(nodes: &[NodeId]) -> String {
    if nodes.is_empty() {
        return "-".to_string();
    }
    let mut ids: Vec<u32> = nodes.iter().map(|n| n.0).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut out = String::new();
    let mut i = 0;
    while i < ids.len() {
        let start = ids[i];
        let mut endv = start;
        while i + 1 < ids.len() && ids[i + 1] == endv + 1 {
            i += 1;
            endv = ids[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if start == endv {
            out.push_str(&start.to_string());
        } else {
            out.push_str(&format!("{start}-{endv}"));
        }
        i += 1;
    }
    out
}

/// Inverse of [`compress_ranges`].
pub fn expand_ranges(s: &str) -> Option<Vec<NodeId>> {
    if s == "-" {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for part in s.split(',') {
        match part.split_once('-') {
            Some((a, b)) => {
                let a: u32 = a.parse().ok()?;
                let b: u32 = b.parse().ok()?;
                if a > b {
                    return None;
                }
                out.extend((a..=b).map(NodeId));
            }
            None => out.push(NodeId(part.parse().ok()?)),
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobRecord {
        JobRecord {
            apid: 1_048_576,
            user: 42,
            nodes: vec![NodeId(5), NodeId(6), NodeId(7), NodeId(100), NodeId(200), NodeId(201)],
            start: 1000,
            end: 8200,
            gpu_core_hours: 12.5,
            max_memory_bytes: 4 * 1024 * 1024 * 1024,
            total_memory_byte_hours: 1.5e12,
        }
    }

    #[test]
    fn derived_metrics() {
        let j = job();
        assert_eq!(j.wall_seconds(), 7200);
        assert_eq!(j.node_count(), 6);
        assert!((j.node_hours() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn render_parse_roundtrip() {
        let j = job();
        let line = j.render();
        let back = JobRecord::parse(&line).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn range_compression() {
        assert_eq!(compress_ranges(&[]), "-");
        assert_eq!(compress_ranges(&[NodeId(5)]), "5");
        assert_eq!(
            compress_ranges(&[NodeId(5), NodeId(6), NodeId(7)]),
            "5-7"
        );
        // Unsorted with duplicates.
        assert_eq!(
            compress_ranges(&[NodeId(7), NodeId(5), NodeId(6), NodeId(5), NodeId(9)]),
            "5-7,9"
        );
    }

    #[test]
    fn range_expansion() {
        assert_eq!(expand_ranges("-"), Some(vec![]));
        assert_eq!(
            expand_ranges("5-7,9"),
            Some(vec![NodeId(5), NodeId(6), NodeId(7), NodeId(9)])
        );
        assert_eq!(expand_ranges("9-5"), None);
        assert_eq!(expand_ranges("abc"), None);
        assert_eq!(expand_ranges("1,,2"), None);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(JobRecord::parse("not a job line").is_err());
        assert!(JobRecord::parse("JOB apid=1").is_err()); // missing fields
        assert!(JobRecord::parse("JOB apid=x user=1 start=0 end=1 gpu_core_hours=0 max_mem=0 total_mem_bh=0 nodes=1").is_err());
        let mut line = job().render();
        line.push_str(" rogue=1");
        assert!(JobRecord::parse(&line).is_err());
    }

    #[test]
    fn aprun_roundtrip() {
        let a = Aprun {
            apid: 1_048_577,
            index: 3,
            start: 777,
            end: 9_999,
        };
        assert_eq!(Aprun::parse(&a.render()), Some(a));
        assert_eq!(a.duration(), 9_222);
        assert_eq!(Aprun::parse("garbage"), None);
        assert_eq!(Aprun::parse("APRUN apid=1 idx=0 start=5"), None);
        // Inverted spans are corrupt, not negative-duration apruns.
        assert_eq!(Aprun::parse("APRUN apid=1 idx=0 start=10 end=5"), None);
    }

    #[test]
    fn error_display() {
        let e = JobRecord::parse("garbage").unwrap_err();
        let s = format!("{e}");
        assert!(s.contains("missing JOB prefix"), "{s}");
    }
}
