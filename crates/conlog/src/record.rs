//! The typed console event — what one SEC-filtered console-log line means.

use serde::{Deserialize, Serialize};
use titan_gpu::{GpuErrorKind, MemoryStructure};
use titan_topology::NodeId;

use crate::time::SimTime;

/// Operator-facing severity, assigned by the SEC rules on the SMW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational (e.g. a page-retirement recording).
    Info,
    /// Degrades a job but not the node.
    Warning,
    /// Node-level failure requiring operator attention.
    Critical,
}

/// One GPU-related critical system event, as logged on the SMW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsoleEvent {
    /// When the event was logged.
    pub time: SimTime,
    /// The reporting node.
    pub node: NodeId,
    /// What happened.
    pub kind: GpuErrorKind,
    /// Memory structure, when the line carries one (DBE lines do: the
    /// paper decoded per-structure DBE breakdowns "by decoding the error
    /// log", Fig. 3(c)).
    pub structure: Option<MemoryStructure>,
    /// Device-memory page, for retirement-related lines.
    pub page: Option<u32>,
    /// ALPS application id of the job running on the node, when one was.
    pub apid: Option<u64>,
}

impl ConsoleEvent {
    /// Severity under the default SEC rule set.
    pub fn severity(&self) -> Severity {
        use GpuErrorKind::*;
        match self.kind {
            EccPageRetirement => Severity::Info,
            GraphicsEngineException | GpuMemoryPageFault | PushBufferStream
            | PreemptiveCleanup => Severity::Warning,
            _ => Severity::Critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time: 100,
            node: NodeId(5),
            kind,
            structure: None,
            page: None,
            apid: None,
        }
    }

    #[test]
    fn severity_mapping() {
        assert_eq!(ev(GpuErrorKind::EccPageRetirement).severity(), Severity::Info);
        assert_eq!(
            ev(GpuErrorKind::GraphicsEngineException).severity(),
            Severity::Warning
        );
        assert_eq!(ev(GpuErrorKind::DoubleBitError).severity(), Severity::Critical);
        assert_eq!(ev(GpuErrorKind::OffTheBus).severity(), Severity::Critical);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
    }
}
