//! The console-log wire format.
//!
//! One event renders to one line, e.g.:
//!
//! ```text
//! [2013-09-14 03:22:41] c3-17c2s5n1 GPU Xid 48: Double Bit Error (detected by the SECDED ECC, but not corrected) struct="Device Memory" page=0x0001a2b3 apid=1048576
//! [2013-07-02 11:00:05] c0-4c2s1n3 GPU has fallen off the bus apid=77341
//! ```
//!
//! Rendering and parsing are exact inverses for every well-formed event;
//! the parser additionally tolerates (and counts) malformed lines, since
//! real console streams interleave GPU events with unrelated chatter.

use bytes::BytesMut;
use titan_gpu::{GpuErrorKind, MemoryStructure, Xid};
use titan_topology::Location;

use crate::record::ConsoleEvent;
use crate::time::StudyCalendar;

/// Counters from a parsing pass over a log stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Lines that produced an event.
    pub parsed: u64,
    /// Lines skipped as non-GPU chatter or garbage.
    pub skipped: u64,
}

/// Renders one event as a console-log line (no trailing newline).
pub fn render_line(ev: &ConsoleEvent) -> String {
    let cal = StudyCalendar;
    let mut s = String::with_capacity(96);
    s.push('[');
    s.push_str(&cal.format_timestamp(ev.time));
    s.push_str("] ");
    s.push_str(&ev.node.location().cname());
    s.push(' ');
    match ev.kind.xid() {
        Some(x) => {
            s.push_str("GPU Xid ");
            s.push_str(&x.to_string());
            s.push_str(": ");
            s.push_str(ev.kind.description());
        }
        None => match ev.kind {
            GpuErrorKind::OffTheBus => s.push_str("GPU has fallen off the bus"),
            // SBEs never appear in console logs; render defensively anyway.
            _ => s.push_str(ev.kind.description()),
        },
    }
    if let Some(st) = ev.structure {
        s.push_str(" struct=\"");
        s.push_str(st.label());
        s.push('"');
    }
    if let Some(p) = ev.page {
        s.push_str(&format!(" page=0x{p:08x}"));
    }
    if let Some(a) = ev.apid {
        s.push_str(&format!(" apid={a}"));
    }
    s
}

/// Decimal digit count of `v` (1 for zero).
fn digits(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 10 {
        v /= 10;
        n += 1;
    }
    n
}

/// Exact byte length of [`render_line`] for `ev`, computed without
/// formatting or allocating. The titan-prof cost ledger charges console
/// bytes per event kind on the hot path; rendering each line twice just
/// to measure it would cost more than the ledger is allowed to
/// (`bench_pr`'s prof-overhead gate). Pinned equal to
/// `render_line(ev).len()` by the `rendered_len_matches_render_line`
/// test over the full event corpus.
pub fn rendered_len(ev: &ConsoleEvent) -> usize {
    // "[" + fixed 19-char timestamp + "] "
    let mut n = 1 + 19 + 2;
    // cname "c{col}-{row}c{cage}s{blade}n{node}" + trailing space.
    let loc = ev.node.location();
    n += 1
        + digits(u64::from(loc.col))
        + 1
        + digits(u64::from(loc.row))
        + 1
        + digits(u64::from(loc.cage))
        + 1
        + digits(u64::from(loc.blade))
        + 1
        + digits(u64::from(loc.node))
        + 1;
    match ev.kind.xid() {
        Some(x) => n += "GPU Xid ".len() + digits(u64::from(x.0)) + ": ".len() + ev.kind.description().len(),
        None => match ev.kind {
            GpuErrorKind::OffTheBus => n += "GPU has fallen off the bus".len(),
            _ => n += ev.kind.description().len(),
        },
    }
    if let Some(st) = ev.structure {
        n += " struct=\"".len() + st.label().len() + 1;
    }
    if ev.page.is_some() {
        n += " page=0x".len() + 8; // {:08x} of a u32 is always 8 hex digits
    }
    if let Some(a) = ev.apid {
        n += " apid=".len() + digits(a);
    }
    n
}

/// Renders a batch of events into a newline-delimited buffer.
pub fn render_stream(events: &[ConsoleEvent]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(events.len() * 96);
    for ev in events {
        buf.extend_from_slice(render_line(ev).as_bytes());
        buf.extend_from_slice(b"\n");
    }
    buf
}

/// Parses one console-log line. `None` for anything that is not a
/// GPU event line (the stream carries plenty of other traffic).
pub fn parse_line(line: &str) -> Option<ConsoleEvent> {
    let cal = StudyCalendar;
    let line = line.trim_end();
    // "[" ts "]" — fixed-width timestamp.
    let rest = line.strip_prefix('[')?;
    // Checked slicing: arbitrary console chatter may contain multi-byte
    // UTF-8 right where the timestamp should be.
    let ts = rest.get(..19)?;
    let time = cal.parse_timestamp(ts)?;
    let rest = rest.get(19..)?;
    let rest = rest.strip_prefix("] ")?;
    // cname up to next space.
    let sp = rest.find(' ')?;
    let (cname, rest) = rest.split_at(sp);
    let node = Location::parse_cname(cname).ok()?.node_id();
    let rest = &rest[1..];

    // Event body.
    let (kind, after): (GpuErrorKind, &str) = if let Some(r) = rest.strip_prefix("GPU Xid ") {
        let colon = r.find(':')?;
        let xid: u8 = r[..colon].parse().ok()?;
        let kind = GpuErrorKind::from_xid(Xid(xid))?;
        // Skip ": <description>" through to the attribute section.
        let body = &r[colon + 1..];
        (kind, attr_tail(body))
    } else if let Some(r) = rest.strip_prefix("GPU has fallen off the bus") {
        (GpuErrorKind::OffTheBus, r)
    } else {
        return None;
    };

    let mut structure = None;
    let mut page = None;
    let mut apid = None;
    for (key, value) in attrs(after) {
        match key {
            "struct" => structure = MemoryStructure::from_label(value),
            "page" => {
                let hex = value.strip_prefix("0x")?;
                page = Some(u32::from_str_radix(hex, 16).ok()?);
            }
            "apid" => apid = Some(value.parse().ok()?),
            _ => {}
        }
    }

    Some(ConsoleEvent {
        time,
        node,
        kind,
        structure,
        page,
        apid,
    })
}

/// Finds the start of the `key=value` attribute section: the first
/// ` key=` occurrence after the free-text description.
fn attr_tail(body: &str) -> &str {
    for key in [" struct=", " page=", " apid="] {
        if let Some(i) = body.find(key) {
            return &body[i..];
        }
    }
    ""
}

/// Iterates `key=value` pairs; values may be double-quoted to contain
/// spaces.
fn attrs(mut s: &str) -> Vec<(&str, &str)> {
    let mut out = Vec::new();
    loop {
        s = s.trim_start();
        let Some(eq) = s.find('=') else { break };
        let key = &s[..eq];
        let rest = &s[eq + 1..];
        let (value, next) = if let Some(r) = rest.strip_prefix('"') {
            match r.find('"') {
                Some(q) => (&r[..q], &r[q + 1..]),
                None => break,
            }
        } else {
            match rest.find(' ') {
                Some(sp) => (&rest[..sp], &rest[sp..]),
                None => (rest, ""),
            }
        };
        out.push((key, value));
        s = next;
    }
    out
}

/// Parses a whole log stream, collecting events and counting skips.
pub fn parse_stream(text: &str) -> (Vec<ConsoleEvent>, ParseStats) {
    let mut events = Vec::new();
    let mut stats = ParseStats::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(ev) => {
                events.push(ev);
                stats.parsed += 1;
            }
            None => stats.skipped += 1,
        }
    }
    (events, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_topology::NodeId;

    fn sample(kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time: 8_982_161,
            node: NodeId(10_000),
            kind,
            structure: Some(MemoryStructure::DeviceMemory),
            page: Some(0x1a2b3),
            apid: Some(1_048_576),
        }
    }

    #[test]
    fn rendered_len_matches_render_line() {
        // The prof ledger relies on the arithmetic mirror being exact;
        // sweep every kind × attribute combination × awkward numbers.
        for kind in GpuErrorKind::ALL {
            for st in [None, Some(MemoryStructure::DeviceMemory), Some(MemoryStructure::SharedL1)] {
                for pg in [None, Some(0u32), Some(0x1a2b3), Some(u32::MAX)] {
                    for ap in [None, Some(0u64), Some(9), Some(10), Some(99), Some(100), Some(u64::MAX)] {
                        for node in [0u32, 1, 3, 10_000, 17_000] {
                            let ev = ConsoleEvent {
                                time: 8_982_161,
                                node: NodeId(node),
                                kind,
                                structure: st,
                                page: pg,
                                apid: ap,
                            };
                            let line = render_line(&ev);
                            assert_eq!(rendered_len(&ev), line.len(), "{line}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn render_dbe_line_shape() {
        let line = render_line(&sample(GpuErrorKind::DoubleBitError));
        assert!(line.starts_with('['), "{line}");
        assert!(line.contains("GPU Xid 48:"), "{line}");
        assert!(line.contains("struct=\"Device Memory\""), "{line}");
        assert!(line.contains("page=0x0001a2b3"), "{line}");
        assert!(line.contains("apid=1048576"), "{line}");
    }

    #[test]
    fn roundtrip_all_xid_kinds() {
        for kind in GpuErrorKind::ALL {
            if kind == GpuErrorKind::SingleBitError {
                continue; // never logged to console
            }
            let ev = ConsoleEvent {
                structure: if kind == GpuErrorKind::DoubleBitError {
                    Some(MemoryStructure::RegisterFile)
                } else {
                    None
                },
                page: None,
                ..sample(kind)
            };
            let line = render_line(&ev);
            let back = parse_line(&line).unwrap_or_else(|| panic!("parse {line}"));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn roundtrip_optional_fields() {
        for (st, pg, ap) in [
            (None, None, None),
            (Some(MemoryStructure::L2Cache), None, None),
            (None, Some(7u32), None),
            (None, None, Some(9u64)),
            (Some(MemoryStructure::DeviceMemory), Some(0xffff_ffff), Some(u64::MAX)),
        ] {
            let ev = ConsoleEvent {
                structure: st,
                page: pg,
                apid: ap,
                ..sample(GpuErrorKind::DoubleBitError)
            };
            assert_eq!(parse_line(&render_line(&ev)), Some(ev));
        }
    }

    #[test]
    fn off_the_bus_roundtrip() {
        let ev = ConsoleEvent {
            structure: None,
            page: None,
            ..sample(GpuErrorKind::OffTheBus)
        };
        let line = render_line(&ev);
        assert!(line.contains("fallen off the bus"), "{line}");
        assert!(!line.contains("Xid"), "{line}");
        assert_eq!(parse_line(&line), Some(ev));
    }

    #[test]
    fn parser_skips_chatter() {
        let text = "\
[2013-06-01 00:00:10] c0-0c1s2n3 GPU Xid 13: Graphics Engine Exception apid=5
random kernel chatter
[2013-06-01 00:00:11] c0-0c1s2n3 LNet: some lustre noise
[bogus timestamp] c0-0c1s2n3 GPU Xid 13: x

[2013-06-01 00:00:12] c0-0c1s2n3 GPU Xid 43: GPU stopped processing apid=5
";
        let (events, stats) = parse_stream(text);
        assert_eq!(events.len(), 2);
        assert_eq!(stats.parsed, 2);
        assert_eq!(stats.skipped, 3);
        assert_eq!(events[0].kind, GpuErrorKind::GraphicsEngineException);
        assert_eq!(events[1].kind, GpuErrorKind::GpuStoppedProcessing);
    }

    #[test]
    fn parser_rejects_unknown_xid() {
        let line = "[2013-06-01 00:00:10] c0-0c1s2n3 GPU Xid 99: Mystery error";
        assert_eq!(parse_line(line), None);
    }

    #[test]
    fn parser_rejects_bad_cname() {
        let line = "[2013-06-01 00:00:10] c9-0c1s2n3 GPU Xid 13: Graphics Engine Exception";
        assert_eq!(parse_line(line), None);
    }

    #[test]
    fn render_stream_is_line_per_event() {
        let evs = vec![
            sample(GpuErrorKind::DoubleBitError),
            sample(GpuErrorKind::GpuStoppedProcessing),
        ];
        let buf = render_stream(&evs);
        let text = std::str::from_utf8(&buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let (parsed, stats) = parse_stream(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn description_containing_attr_like_text_is_safe() {
        // The attr scanner must find the *first* attribute key, not text
        // inside the description.
        let ev = ConsoleEvent {
            structure: Some(MemoryStructure::SharedL1),
            page: None,
            apid: Some(3),
            ..sample(GpuErrorKind::PreemptiveCleanup)
        };
        assert_eq!(parse_line(&render_line(&ev)), Some(ev));
    }
}
