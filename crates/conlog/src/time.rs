//! The study calendar: Jun 2013 00:00 UTC through end of Feb 2015.
//!
//! "Our study covers … Titan's system logs collected over the period of
//! Jun'2013 to Feb'2015" — 21 calendar months, 638 days. Simulation time
//! is seconds since 2013-06-01T00:00:00Z; this module converts to and
//! from calendar dates and renders/parses log timestamps. Implemented by
//! hand (tables, not chrono) so the workspace stays within its approved
//! dependency set — the span contains no leap year anyway (2016 is the
//! next one).

use serde::{Deserialize, Serialize};

/// Seconds since the study epoch, 2013-06-01T00:00:00Z.
pub type SimTime = u64;

/// Months in the study window (Jun'13 … Feb'15 inclusive).
pub const STUDY_MONTHS: usize = 21;

/// Days in the study window.
pub const STUDY_DAYS: u64 = 638;

/// Total study duration in seconds.
pub const STUDY_SECONDS: SimTime = STUDY_DAYS * 86_400;

/// (year, month) for each study month index.
const MONTH_TABLE: [(u16, u8); STUDY_MONTHS] = [
    (2013, 6),
    (2013, 7),
    (2013, 8),
    (2013, 9),
    (2013, 10),
    (2013, 11),
    (2013, 12),
    (2014, 1),
    (2014, 2),
    (2014, 3),
    (2014, 4),
    (2014, 5),
    (2014, 6),
    (2014, 7),
    (2014, 8),
    (2014, 9),
    (2014, 10),
    (2014, 11),
    (2014, 12),
    (2015, 1),
    (2015, 2),
];

/// Days in each study month (no leap years in-window).
const MONTH_DAYS: [u64; STUDY_MONTHS] = [
    30, 31, 31, 30, 31, 30, 31, // Jun–Dec 2013
    31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31, // 2014
    31, 28, // Jan–Feb 2015
];

/// Short month names for report rendering.
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// A broken-down calendar instant within the study window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CalendarTime {
    /// Calendar year (2013–2015).
    pub year: u16,
    /// Calendar month, 1–12.
    pub month: u8,
    /// Day of month, 1-based.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

/// Calendar math over the study window.
#[derive(Debug, Clone, Copy, Default)]
pub struct StudyCalendar;

impl StudyCalendar {
    /// Month index (0 = Jun'13 … 20 = Feb'15) containing `t`. Times past
    /// the window clamp to the final month — late events still get
    /// bucketed rather than dropped.
    pub fn month_index(&self, t: SimTime) -> usize {
        let mut days = t / 86_400;
        for (i, &md) in MONTH_DAYS.iter().enumerate() {
            if days < md {
                return i;
            }
            days -= md;
        }
        STUDY_MONTHS - 1
    }

    /// First instant of study month `i`.
    pub fn month_start(&self, i: usize) -> SimTime {
        MONTH_DAYS[..i].iter().sum::<u64>() * 86_400
    }

    /// Label for study month `i`, e.g. `"Jun'13"`.
    pub fn month_label(&self, i: usize) -> String {
        let (y, m) = MONTH_TABLE[i];
        format!("{}'{}", MONTH_NAMES[m as usize - 1], y % 100)
    }

    /// All month labels in order.
    pub fn month_labels(&self) -> Vec<String> {
        (0..STUDY_MONTHS).map(|i| self.month_label(i)).collect()
    }

    /// Breaks `t` into calendar fields. Clamps past-window times into the
    /// last day of the window.
    pub fn breakdown(&self, t: SimTime) -> CalendarTime {
        let t = t.min(STUDY_SECONDS - 1);
        let mi = self.month_index(t);
        let (year, month) = MONTH_TABLE[mi];
        let into_month = t - self.month_start(mi);
        let day = (into_month / 86_400) as u8 + 1;
        let rem = into_month % 86_400;
        CalendarTime {
            year,
            month,
            day,
            hour: (rem / 3600) as u8,
            minute: (rem % 3600 / 60) as u8,
            second: (rem % 60) as u8,
        }
    }

    /// Simulation time of a calendar instant. Returns `None` when the
    /// date is outside the study window or malformed.
    pub fn sim_time(&self, c: CalendarTime) -> Option<SimTime> {
        let mi = MONTH_TABLE
            .iter()
            .position(|&(y, m)| y == c.year && m == c.month)?;
        if c.day == 0
            || (c.day as u64) > MONTH_DAYS[mi]
            || c.hour > 23
            || c.minute > 59
            || c.second > 59
        {
            return None;
        }
        Some(
            self.month_start(mi)
                + (c.day as u64 - 1) * 86_400
                + c.hour as u64 * 3600
                + c.minute as u64 * 60
                + c.second as u64,
        )
    }

    /// Convenience: midnight at the start of `(year, month, day)`.
    pub fn date(&self, year: u16, month: u8, day: u8) -> Option<SimTime> {
        self.sim_time(CalendarTime {
            year,
            month,
            day,
            hour: 0,
            minute: 0,
            second: 0,
        })
    }

    /// Renders the log timestamp: `2013-06-01 12:34:56`.
    pub fn format_timestamp(&self, t: SimTime) -> String {
        let c = self.breakdown(t);
        format!(
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }

    /// Parses a [`format_timestamp`](Self::format_timestamp) string.
    pub fn parse_timestamp(&self, s: &str) -> Option<SimTime> {
        let b = s.as_bytes();
        if b.len() != 19 || b[4] != b'-' || b[7] != b'-' || b[10] != b' ' || b[13] != b':'
            || b[16] != b':'
        {
            return None;
        }
        if !b.iter().all(|c| c.is_ascii()) {
            return None; // multi-byte input can't be a valid timestamp
        }
        fn num(s: &str) -> Option<u16> {
            s.parse().ok()
        }
        let c = CalendarTime {
            year: num(&s[0..4])?,
            month: num(&s[5..7])? as u8,
            day: num(&s[8..10])? as u8,
            hour: num(&s[11..13])? as u8,
            minute: num(&s[14..16])? as u8,
            second: num(&s[17..19])? as u8,
        };
        self.sim_time(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAL: StudyCalendar = StudyCalendar;

    #[test]
    fn window_totals() {
        assert_eq!(MONTH_DAYS.iter().sum::<u64>(), STUDY_DAYS);
        assert_eq!(STUDY_SECONDS, 55_123_200);
    }

    #[test]
    fn epoch_is_june_first() {
        let c = CAL.breakdown(0);
        assert_eq!((c.year, c.month, c.day), (2013, 6, 1));
        assert_eq!((c.hour, c.minute, c.second), (0, 0, 0));
    }

    #[test]
    fn month_index_boundaries() {
        assert_eq!(CAL.month_index(0), 0);
        // Last second of June 2013.
        assert_eq!(CAL.month_index(30 * 86_400 - 1), 0);
        // First second of July 2013.
        assert_eq!(CAL.month_index(30 * 86_400), 1);
        // Past-window clamps to Feb'15.
        assert_eq!(CAL.month_index(STUDY_SECONDS + 999), STUDY_MONTHS - 1);
    }

    #[test]
    fn month_start_inverse_of_index() {
        for i in 0..STUDY_MONTHS {
            let s = CAL.month_start(i);
            assert_eq!(CAL.month_index(s), i);
            if s > 0 {
                assert_eq!(CAL.month_index(s - 1), i - 1);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(CAL.month_label(0), "Jun'13");
        assert_eq!(CAL.month_label(6), "Dec'13");
        assert_eq!(CAL.month_label(7), "Jan'14");
        assert_eq!(CAL.month_label(20), "Feb'15");
        assert_eq!(CAL.month_labels().len(), STUDY_MONTHS);
    }

    #[test]
    fn date_helpers() {
        assert_eq!(CAL.date(2013, 6, 1), Some(0));
        assert_eq!(CAL.date(2013, 12, 1), Some(214 * 86_400 - 31 * 86_400));
        assert_eq!(CAL.date(2016, 1, 1), None);
        assert_eq!(CAL.date(2014, 2, 29), None); // not a leap year
        assert_eq!(CAL.date(2014, 2, 28), CAL.date(2014, 2, 28));
    }

    #[test]
    fn timestamp_roundtrip() {
        for &t in &[0u64, 1, 86_399, 86_400, 12_345_678, STUDY_SECONDS - 1] {
            let s = CAL.format_timestamp(t);
            assert_eq!(CAL.parse_timestamp(&s), Some(t), "{s}");
        }
    }

    #[test]
    fn timestamp_format_shape() {
        assert_eq!(CAL.format_timestamp(0), "2013-06-01 00:00:00");
        assert_eq!(CAL.format_timestamp(3_661), "2013-06-01 01:01:01");
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "",
            "2013-06-01",
            "2013/06/01 00:00:00",
            "2013-06-01T00:00:00",
            "2013-06-31 00:00:00", // June has 30 days
            "2013-13-01 00:00:00",
            "2013-06-01 24:00:00",
            "2013-06-01 00:60:00",
            "201x-06-01 00:00:00",
        ] {
            assert_eq!(CAL.parse_timestamp(s), None, "{s:?}");
        }
    }

    #[test]
    fn breakdown_sim_time_roundtrip_scan() {
        // Every 6h41m across the whole window.
        let mut t = 0u64;
        while t < STUDY_SECONDS {
            let c = CAL.breakdown(t);
            assert_eq!(CAL.sim_time(c), Some(t));
            t += 24_060;
        }
    }
}
