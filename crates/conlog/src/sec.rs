//! A simple-event-correlator (SEC) rule engine.
//!
//! The paper: console logs "are parsed using simple event correlators
//! (SEC) on software management workstations (SMW) to log critical system
//! events. This is a comprehensive log of critical system events that
//! alerts the system operators of unexpected/undesired behavior."
//! Observation 5 adds the operational lesson: "System operators have to
//! keep updating their log parsing rules to account for such new
//! introductions" — which is why rules here are data, not code.
//!
//! The engine consumes [`ConsoleEvent`]s in time order and produces
//! [`SecAction`]s: alerts, duplicate suppression, and threshold alarms
//! (e.g. the site's pull-after-DBE policy for GPU cards).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_gpu::GpuErrorKind;
use titan_topology::NodeId;

use crate::record::ConsoleEvent;
use crate::time::SimTime;

/// A correlation rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SecRule {
    /// Emit an alert for every occurrence of `kind`.
    AlertEach {
        /// Event kind to alert on.
        kind: GpuErrorKind,
    },
    /// Suppress repeats of `kind` on the same node within `window`
    /// seconds of the previous one (classic SEC duplicate folding).
    SuppressRepeats {
        /// Event kind to fold.
        kind: GpuErrorKind,
        /// Fold window, seconds.
        window: u64,
    },
    /// Raise a threshold alarm once a node has seen `count` events of
    /// `kind` in total (e.g. "pull the card after 2 DBEs").
    Threshold {
        /// Event kind to count.
        kind: GpuErrorKind,
        /// Trigger count.
        count: u32,
    },
    /// Raise a cluster alarm when at least `count` events of `kind` occur
    /// fleet-wide within `window` seconds — this is how the off-the-bus
    /// epidemic ("these errors were mostly clustered and that's when the
    /// criticality of the issue was identified") would page an operator.
    Cluster {
        /// Event kind to watch.
        kind: GpuErrorKind,
        /// Events needed inside the window.
        count: u32,
        /// Window length, seconds.
        window: u64,
    },
}

/// Engine output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecAction {
    /// Forward this event to the critical-event log.
    Alert {
        /// When.
        time: SimTime,
        /// Where.
        node: NodeId,
        /// What.
        kind: GpuErrorKind,
    },
    /// A per-node total crossed its threshold.
    ThresholdAlarm {
        /// When the threshold was crossed.
        time: SimTime,
        /// Node whose count crossed.
        node: NodeId,
        /// Event kind counted.
        kind: GpuErrorKind,
        /// The count reached.
        count: u32,
    },
    /// A fleet-wide burst was detected.
    ClusterAlarm {
        /// When the burst crossed the threshold.
        time: SimTime,
        /// Event kind bursting.
        kind: GpuErrorKind,
        /// Events inside the window.
        count: u32,
    },
}

/// Errors loading a rule file.
#[derive(Debug)]
pub struct RuleFileError(String);

impl std::fmt::Display for RuleFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SEC rule file error: {}", self.0)
    }
}

impl std::error::Error for RuleFileError {}

/// Serializes a rule set to the JSON config format operators edit —
/// Observation 5: "System operators have to keep updating their log
/// parsing rules to account for such new introductions."
pub fn rules_to_json(rules: &[SecRule]) -> String {
    serde_json::to_string_pretty(rules).expect("rules serialize")
}

/// Loads a rule set from the JSON config format.
pub fn rules_from_json(text: &str) -> Result<Vec<SecRule>, RuleFileError> {
    serde_json::from_str(text).map_err(|e| RuleFileError(e.to_string()))
}

/// Stateful SEC engine. Feed events in nondecreasing time order.
#[derive(Debug, Clone)]
pub struct SecEngine {
    rules: Vec<SecRule>,
    last_seen: BTreeMap<(NodeId, GpuErrorKind), SimTime>,
    node_counts: BTreeMap<(NodeId, GpuErrorKind), u32>,
    fleet_windows: BTreeMap<GpuErrorKind, Vec<SimTime>>,
    /// Suppressed-duplicate tally, exposed for test/ops introspection.
    pub suppressed: u64,
}

impl SecEngine {
    /// Builds an engine from a rule list.
    pub fn new(rules: Vec<SecRule>) -> Self {
        SecEngine {
            rules,
            last_seen: BTreeMap::new(),
            node_counts: BTreeMap::new(),
            fleet_windows: BTreeMap::new(),
            suppressed: 0,
        }
    }

    /// The default OLCF-style rule set used throughout the study:
    /// alert on every hardware error, fold application-XID repeats within
    /// 5 s (they re-report across a job's nodes), pull cards at 2 DBEs,
    /// page on off-the-bus clusters.
    pub fn olcf_default() -> Self {
        use GpuErrorKind::*;
        SecEngine::new(vec![
            SecRule::AlertEach { kind: DoubleBitError },
            SecRule::AlertEach { kind: OffTheBus },
            SecRule::AlertEach { kind: EccPageRetirement },
            SecRule::SuppressRepeats {
                kind: GraphicsEngineException,
                window: 5,
            },
            SecRule::Threshold {
                kind: DoubleBitError,
                count: 2,
            },
            SecRule::Cluster {
                kind: OffTheBus,
                count: 5,
                window: 24 * 3600,
            },
        ])
    }

    /// Processes one event, returning any actions it triggers.
    pub fn ingest(&mut self, ev: &ConsoleEvent) -> Vec<SecAction> {
        let mut out = Vec::new();
        for rule in &self.rules {
            match *rule {
                SecRule::AlertEach { kind } if kind == ev.kind => {
                    out.push(SecAction::Alert {
                        time: ev.time,
                        node: ev.node,
                        kind,
                    });
                }
                SecRule::SuppressRepeats { kind, window } if kind == ev.kind => {
                    let key = (ev.node, kind);
                    let dup = self
                        .last_seen
                        .get(&key)
                        .is_some_and(|&t| ev.time.saturating_sub(t) < window);
                    self.last_seen.insert(key, ev.time);
                    if dup {
                        self.suppressed += 1;
                    } else {
                        out.push(SecAction::Alert {
                            time: ev.time,
                            node: ev.node,
                            kind,
                        });
                    }
                }
                SecRule::Threshold { kind, count } if kind == ev.kind => {
                    let c = self.node_counts.entry((ev.node, kind)).or_insert(0);
                    *c += 1;
                    if *c == count {
                        out.push(SecAction::ThresholdAlarm {
                            time: ev.time,
                            node: ev.node,
                            kind,
                            count,
                        });
                    }
                }
                SecRule::Cluster { kind, count, window } if kind == ev.kind => {
                    let w = self.fleet_windows.entry(kind).or_default();
                    w.push(ev.time);
                    w.retain(|&t| ev.time.saturating_sub(t) < window);
                    if w.len() as u32 == count {
                        out.push(SecAction::ClusterAlarm {
                            time: ev.time,
                            kind,
                            count,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Processes a batch, returning all actions in order.
    pub fn ingest_all(&mut self, events: &[ConsoleEvent]) -> Vec<SecAction> {
        events.iter().flat_map(|e| self.ingest(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: SimTime, node: u32, kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(node),
            kind,
            structure: None,
            page: None,
            apid: None,
        }
    }

    #[test]
    fn alert_each_fires_every_time() {
        let mut e = SecEngine::new(vec![SecRule::AlertEach {
            kind: GpuErrorKind::DoubleBitError,
        }]);
        let a = e.ingest_all(&[
            ev(1, 0, GpuErrorKind::DoubleBitError),
            ev(2, 0, GpuErrorKind::DoubleBitError),
            ev(3, 0, GpuErrorKind::GraphicsEngineException),
        ]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn suppress_folds_within_window() {
        let mut e = SecEngine::new(vec![SecRule::SuppressRepeats {
            kind: GpuErrorKind::GraphicsEngineException,
            window: 5,
        }]);
        let a = e.ingest_all(&[
            ev(100, 1, GpuErrorKind::GraphicsEngineException),
            ev(101, 1, GpuErrorKind::GraphicsEngineException), // folded
            ev(104, 1, GpuErrorKind::GraphicsEngineException), // folded (again inside 5s of 101)
            ev(110, 1, GpuErrorKind::GraphicsEngineException), // new alert
            ev(102, 2, GpuErrorKind::GraphicsEngineException), // other node: new
        ]);
        assert_eq!(a.len(), 3);
        assert_eq!(e.suppressed, 2);
    }

    #[test]
    fn threshold_fires_exactly_once_at_crossing() {
        let mut e = SecEngine::new(vec![SecRule::Threshold {
            kind: GpuErrorKind::DoubleBitError,
            count: 2,
        }]);
        let a = e.ingest_all(&[
            ev(1, 7, GpuErrorKind::DoubleBitError),
            ev(2, 7, GpuErrorKind::DoubleBitError),
            ev(3, 7, GpuErrorKind::DoubleBitError),
        ]);
        let alarms: Vec<_> = a
            .iter()
            .filter(|x| matches!(x, SecAction::ThresholdAlarm { .. }))
            .collect();
        assert_eq!(alarms.len(), 1);
        match alarms[0] {
            SecAction::ThresholdAlarm { time, count, .. } => {
                assert_eq!(*time, 2);
                assert_eq!(*count, 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn cluster_alarm_on_burst_only() {
        let mut e = SecEngine::new(vec![SecRule::Cluster {
            kind: GpuErrorKind::OffTheBus,
            count: 3,
            window: 100,
        }]);
        // Two events far apart: no alarm.
        let a = e.ingest_all(&[ev(0, 1, GpuErrorKind::OffTheBus), ev(500, 2, GpuErrorKind::OffTheBus)]);
        assert!(a.is_empty());
        // Burst of three within the window: alarm once.
        let a = e.ingest_all(&[
            ev(1000, 3, GpuErrorKind::OffTheBus),
            ev(1010, 4, GpuErrorKind::OffTheBus),
            ev(1020, 5, GpuErrorKind::OffTheBus),
        ]);
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, SecAction::ClusterAlarm { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn rule_file_roundtrip() {
        let rules = vec![
            SecRule::AlertEach {
                kind: GpuErrorKind::DoubleBitError,
            },
            SecRule::Cluster {
                kind: GpuErrorKind::OffTheBus,
                count: 5,
                window: 86_400,
            },
        ];
        let json = rules_to_json(&rules);
        let back = rules_from_json(&json).unwrap();
        assert_eq!(back, rules);
        assert!(rules_from_json("not json").is_err());
        // Operators adding a rule for a new XID (Observation 5) is a
        // config edit, not a code change:
        let mut extended = rules_from_json(&json).unwrap();
        extended.push(SecRule::AlertEach {
            kind: GpuErrorKind::EccPageRetirement,
        });
        let mut engine = SecEngine::new(extended);
        let acts = engine.ingest(&ev(1, 0, GpuErrorKind::EccPageRetirement));
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn olcf_default_pulls_cards_at_two_dbes() {
        let mut e = SecEngine::olcf_default();
        let mut alarms = 0;
        for t in 0..3 {
            for act in e.ingest(&ev(t * 1000, 42, GpuErrorKind::DoubleBitError)) {
                if matches!(act, SecAction::ThresholdAlarm { .. }) {
                    alarms += 1;
                }
            }
        }
        assert_eq!(alarms, 1);
    }
}
