//! A simple-event-correlator (SEC) rule engine.
//!
//! The paper: console logs "are parsed using simple event correlators
//! (SEC) on software management workstations (SMW) to log critical system
//! events. This is a comprehensive log of critical system events that
//! alerts the system operators of unexpected/undesired behavior."
//! Observation 5 adds the operational lesson: "System operators have to
//! keep updating their log parsing rules to account for such new
//! introductions" — which is why rules here are data, not code.
//!
//! The engine consumes [`ConsoleEvent`]s in time order and produces
//! [`SecAction`]s: alerts, duplicate suppression, and threshold alarms
//! (e.g. the site's pull-after-DBE policy for GPU cards).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_gpu::GpuErrorKind;
use titan_topology::NodeId;

use crate::record::ConsoleEvent;
use crate::time::SimTime;

/// A correlation rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SecRule {
    /// Emit an alert for every occurrence of `kind`.
    AlertEach {
        /// Event kind to alert on.
        kind: GpuErrorKind,
    },
    /// Suppress repeats of `kind` on the same node within `window`
    /// seconds of the previous one (classic SEC duplicate folding).
    SuppressRepeats {
        /// Event kind to fold.
        kind: GpuErrorKind,
        /// Fold window, seconds.
        window: u64,
    },
    /// Raise a threshold alarm once a node has seen `count` events of
    /// `kind` in total (e.g. "pull the card after 2 DBEs").
    Threshold {
        /// Event kind to count.
        kind: GpuErrorKind,
        /// Trigger count.
        count: u32,
    },
    /// Raise a cluster alarm when at least `count` events of `kind` occur
    /// fleet-wide within `window` seconds — this is how the off-the-bus
    /// epidemic ("these errors were mostly clustered and that's when the
    /// criticality of the issue was identified") would page an operator.
    Cluster {
        /// Event kind to watch.
        kind: GpuErrorKind,
        /// Events needed inside the window.
        count: u32,
        /// Window length, seconds.
        window: u64,
    },
}

/// Engine output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecAction {
    /// Forward this event to the critical-event log.
    Alert {
        /// When.
        time: SimTime,
        /// Where.
        node: NodeId,
        /// What.
        kind: GpuErrorKind,
    },
    /// A per-node total crossed its threshold.
    ThresholdAlarm {
        /// When the threshold was crossed.
        time: SimTime,
        /// Node whose count crossed.
        node: NodeId,
        /// Event kind counted.
        kind: GpuErrorKind,
        /// The count reached.
        count: u32,
    },
    /// A fleet-wide burst was detected.
    ClusterAlarm {
        /// When the burst crossed the threshold.
        time: SimTime,
        /// Event kind bursting.
        kind: GpuErrorKind,
        /// Events inside the window.
        count: u32,
    },
}

impl SecAction {
    /// When the action fired.
    pub fn time(&self) -> SimTime {
        match *self {
            SecAction::Alert { time, .. }
            | SecAction::ThresholdAlarm { time, .. }
            | SecAction::ClusterAlarm { time, .. } => time,
        }
    }

    /// The node the action is scoped to (cluster alarms are fleet-wide).
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            SecAction::Alert { node, .. } | SecAction::ThresholdAlarm { node, .. } => Some(node),
            SecAction::ClusterAlarm { .. } => None,
        }
    }

    /// Stable snake_case label for telemetry payloads.
    pub fn label(&self) -> &'static str {
        match self {
            SecAction::Alert { .. } => "alert",
            SecAction::ThresholdAlarm { .. } => "threshold_alarm",
            SecAction::ClusterAlarm { .. } => "cluster_alarm",
        }
    }
}

/// Errors loading a rule file.
#[derive(Debug)]
pub struct RuleFileError(String);

impl std::fmt::Display for RuleFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SEC rule file error: {}", self.0)
    }
}

impl std::error::Error for RuleFileError {}

/// Serializes a rule set to the JSON config format operators edit —
/// Observation 5: "System operators have to keep updating their log
/// parsing rules to account for such new introductions."
pub fn rules_to_json(rules: &[SecRule]) -> String {
    serde_json::to_string_pretty(rules).expect("rules serialize")
}

/// Loads a rule set from the JSON config format.
pub fn rules_from_json(text: &str) -> Result<Vec<SecRule>, RuleFileError> {
    serde_json::from_str(text).map_err(|e| RuleFileError(e.to_string()))
}

/// Pipeline statistics for one engine's lifetime, all in the sim time
/// domain (pure event counts). Consumed by the observability layer —
/// `titan-conlog` stays independent of `titan-obs`, so these are plain
/// numbers the collector copies into the metrics document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SecStats {
    /// Console events fed through `ingest`.
    pub events_ingested: u64,
    /// Alerts emitted (AlertEach + unfolded SuppressRepeats).
    pub alerts: u64,
    /// Duplicates folded by SuppressRepeats rules.
    pub suppressed: u64,
    /// Per-node threshold alarms raised.
    pub threshold_alarms: u64,
    /// Fleet-wide cluster alarms raised.
    pub cluster_alarms: u64,
    /// Per-rule match tallies as `(rule description, hits)`, in rule
    /// order. A hit is an event the rule's kind filter matched,
    /// whether it alerted or folded.
    pub rule_hits: Vec<(String, u64)>,
}

impl SecRule {
    /// A short stable description used as a metric key, e.g.
    /// `alert_each_dbe` — snake_case, derived from the rule shape and
    /// the XID it watches so re-ordering rules never renames metrics.
    pub fn describe(&self) -> String {
        fn kind_key(kind: GpuErrorKind) -> String {
            match kind.xid() {
                Some(x) => format!("xid{}", x.0),
                None => format!("{kind:?}").to_lowercase(),
            }
        }
        match *self {
            SecRule::AlertEach { kind } => format!("alert_each_{}", kind_key(kind)),
            SecRule::SuppressRepeats { kind, window } => {
                format!("suppress_repeats_{}_{}s", kind_key(kind), window)
            }
            SecRule::Threshold { kind, count } => {
                format!("threshold_{}_{}", kind_key(kind), count)
            }
            SecRule::Cluster { kind, count, window } => {
                format!("cluster_{}_{}_{}s", kind_key(kind), count, window)
            }
        }
    }
}

/// Stateful SEC engine. Feed events in nondecreasing time order.
#[derive(Debug, Clone)]
pub struct SecEngine {
    rules: Vec<SecRule>,
    last_seen: BTreeMap<(NodeId, GpuErrorKind), SimTime>,
    node_counts: BTreeMap<(NodeId, GpuErrorKind), u32>,
    fleet_windows: BTreeMap<GpuErrorKind, Vec<SimTime>>,
    /// Suppressed-duplicate tally, exposed for test/ops introspection.
    pub suppressed: u64,
    events_ingested: u64,
    alerts: u64,
    threshold_alarms: u64,
    cluster_alarms: u64,
    rule_hits: Vec<u64>,
}

impl SecEngine {
    /// Builds an engine from a rule list.
    pub fn new(rules: Vec<SecRule>) -> Self {
        let n_rules = rules.len();
        SecEngine {
            rules,
            last_seen: BTreeMap::new(),
            node_counts: BTreeMap::new(),
            fleet_windows: BTreeMap::new(),
            suppressed: 0,
            events_ingested: 0,
            alerts: 0,
            threshold_alarms: 0,
            cluster_alarms: 0,
            rule_hits: vec![0; n_rules],
        }
    }

    /// The default OLCF-style rule set used throughout the study:
    /// alert on every hardware error, fold application-XID repeats within
    /// 5 s (they re-report across a job's nodes), pull cards at 2 DBEs,
    /// page on off-the-bus clusters.
    pub fn olcf_default() -> Self {
        use GpuErrorKind::*;
        SecEngine::new(vec![
            SecRule::AlertEach { kind: DoubleBitError },
            SecRule::AlertEach { kind: OffTheBus },
            SecRule::AlertEach { kind: EccPageRetirement },
            SecRule::SuppressRepeats {
                kind: GraphicsEngineException,
                window: 5,
            },
            SecRule::Threshold {
                kind: DoubleBitError,
                count: 2,
            },
            SecRule::Cluster {
                kind: OffTheBus,
                count: 5,
                window: 24 * 3600,
            },
        ])
    }

    /// Processes one event, returning any actions it triggers.
    pub fn ingest(&mut self, ev: &ConsoleEvent) -> Vec<SecAction> {
        self.events_ingested += 1;
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            match *rule {
                SecRule::AlertEach { kind } if kind == ev.kind => {
                    self.rule_hits[i] += 1;
                    self.alerts += 1;
                    out.push(SecAction::Alert {
                        time: ev.time,
                        node: ev.node,
                        kind,
                    });
                }
                SecRule::SuppressRepeats { kind, window } if kind == ev.kind => {
                    self.rule_hits[i] += 1;
                    let key = (ev.node, kind);
                    let dup = self
                        .last_seen
                        .get(&key)
                        .is_some_and(|&t| ev.time.saturating_sub(t) < window);
                    self.last_seen.insert(key, ev.time);
                    if dup {
                        self.suppressed += 1;
                    } else {
                        self.alerts += 1;
                        out.push(SecAction::Alert {
                            time: ev.time,
                            node: ev.node,
                            kind,
                        });
                    }
                }
                SecRule::Threshold { kind, count } if kind == ev.kind => {
                    self.rule_hits[i] += 1;
                    let c = self.node_counts.entry((ev.node, kind)).or_insert(0);
                    *c += 1;
                    if *c == count {
                        self.threshold_alarms += 1;
                        out.push(SecAction::ThresholdAlarm {
                            time: ev.time,
                            node: ev.node,
                            kind,
                            count,
                        });
                    }
                }
                SecRule::Cluster { kind, count, window } if kind == ev.kind => {
                    self.rule_hits[i] += 1;
                    let w = self.fleet_windows.entry(kind).or_default();
                    w.push(ev.time);
                    w.retain(|&t| ev.time.saturating_sub(t) < window);
                    if w.len() as u32 == count {
                        self.cluster_alarms += 1;
                        out.push(SecAction::ClusterAlarm {
                            time: ev.time,
                            kind,
                            count,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Processes a batch, returning all actions in order.
    pub fn ingest_all(&mut self, events: &[ConsoleEvent]) -> Vec<SecAction> {
        events.iter().flat_map(|e| self.ingest(e)).collect()
    }

    /// Snapshot of the pipeline statistics accumulated so far.
    pub fn stats(&self) -> SecStats {
        SecStats {
            events_ingested: self.events_ingested,
            alerts: self.alerts,
            suppressed: self.suppressed,
            threshold_alarms: self.threshold_alarms,
            cluster_alarms: self.cluster_alarms,
            rule_hits: self
                .rules
                .iter()
                .zip(self.rule_hits.iter())
                .map(|(r, &h)| (r.describe(), h))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: SimTime, node: u32, kind: GpuErrorKind) -> ConsoleEvent {
        ConsoleEvent {
            time,
            node: NodeId(node),
            kind,
            structure: None,
            page: None,
            apid: None,
        }
    }

    #[test]
    fn alert_each_fires_every_time() {
        let mut e = SecEngine::new(vec![SecRule::AlertEach {
            kind: GpuErrorKind::DoubleBitError,
        }]);
        let a = e.ingest_all(&[
            ev(1, 0, GpuErrorKind::DoubleBitError),
            ev(2, 0, GpuErrorKind::DoubleBitError),
            ev(3, 0, GpuErrorKind::GraphicsEngineException),
        ]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn suppress_folds_within_window() {
        let mut e = SecEngine::new(vec![SecRule::SuppressRepeats {
            kind: GpuErrorKind::GraphicsEngineException,
            window: 5,
        }]);
        let a = e.ingest_all(&[
            ev(100, 1, GpuErrorKind::GraphicsEngineException),
            ev(101, 1, GpuErrorKind::GraphicsEngineException), // folded
            ev(104, 1, GpuErrorKind::GraphicsEngineException), // folded (again inside 5s of 101)
            ev(110, 1, GpuErrorKind::GraphicsEngineException), // new alert
            ev(102, 2, GpuErrorKind::GraphicsEngineException), // other node: new
        ]);
        assert_eq!(a.len(), 3);
        assert_eq!(e.suppressed, 2);
    }

    #[test]
    fn threshold_fires_exactly_once_at_crossing() {
        let mut e = SecEngine::new(vec![SecRule::Threshold {
            kind: GpuErrorKind::DoubleBitError,
            count: 2,
        }]);
        let a = e.ingest_all(&[
            ev(1, 7, GpuErrorKind::DoubleBitError),
            ev(2, 7, GpuErrorKind::DoubleBitError),
            ev(3, 7, GpuErrorKind::DoubleBitError),
        ]);
        let alarms: Vec<_> = a
            .iter()
            .filter(|x| matches!(x, SecAction::ThresholdAlarm { .. }))
            .collect();
        assert_eq!(alarms.len(), 1);
        match alarms[0] {
            SecAction::ThresholdAlarm { time, count, .. } => {
                assert_eq!(*time, 2);
                assert_eq!(*count, 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn cluster_alarm_on_burst_only() {
        let mut e = SecEngine::new(vec![SecRule::Cluster {
            kind: GpuErrorKind::OffTheBus,
            count: 3,
            window: 100,
        }]);
        // Two events far apart: no alarm.
        let a = e.ingest_all(&[ev(0, 1, GpuErrorKind::OffTheBus), ev(500, 2, GpuErrorKind::OffTheBus)]);
        assert!(a.is_empty());
        // Burst of three within the window: alarm once.
        let a = e.ingest_all(&[
            ev(1000, 3, GpuErrorKind::OffTheBus),
            ev(1010, 4, GpuErrorKind::OffTheBus),
            ev(1020, 5, GpuErrorKind::OffTheBus),
        ]);
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, SecAction::ClusterAlarm { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn rule_file_roundtrip() {
        let rules = vec![
            SecRule::AlertEach {
                kind: GpuErrorKind::DoubleBitError,
            },
            SecRule::Cluster {
                kind: GpuErrorKind::OffTheBus,
                count: 5,
                window: 86_400,
            },
        ];
        let json = rules_to_json(&rules);
        let back = rules_from_json(&json).unwrap();
        assert_eq!(back, rules);
        assert!(rules_from_json("not json").is_err());
        // Operators adding a rule for a new XID (Observation 5) is a
        // config edit, not a code change:
        let mut extended = rules_from_json(&json).unwrap();
        extended.push(SecRule::AlertEach {
            kind: GpuErrorKind::EccPageRetirement,
        });
        let mut engine = SecEngine::new(extended);
        let acts = engine.ingest(&ev(1, 0, GpuErrorKind::EccPageRetirement));
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn stats_count_hits_actions_and_suppressions() {
        let mut e = SecEngine::olcf_default();
        e.ingest_all(&[
            ev(1, 0, GpuErrorKind::DoubleBitError),
            ev(2, 0, GpuErrorKind::DoubleBitError), // threshold alarm at 2
            ev(10, 1, GpuErrorKind::GraphicsEngineException),
            ev(11, 1, GpuErrorKind::GraphicsEngineException), // folded
            ev(100, 2, GpuErrorKind::SingleBitError),         // matches no rule
        ]);
        let s = e.stats();
        assert_eq!(s.events_ingested, 5);
        // 2 DBE alerts + 1 unfolded XID 13 alert.
        assert_eq!(s.alerts, 3);
        assert_eq!(s.suppressed, 1);
        assert_eq!(s.threshold_alarms, 1);
        assert_eq!(s.cluster_alarms, 0);
        // Rule keys are stable and shape-derived.
        let hits: std::collections::BTreeMap<_, _> = s.rule_hits.iter().cloned().collect();
        assert_eq!(hits.get("alert_each_xid48"), Some(&2));
        assert_eq!(hits.get("suppress_repeats_xid13_5s"), Some(&2));
        assert_eq!(hits.get("threshold_xid48_2"), Some(&2));
        // Off-the-bus has no XID in the paper's tables; the key falls
        // back to the variant name.
        assert_eq!(hits.get("cluster_offthebus_5_86400s"), Some(&0));
    }

    #[test]
    fn olcf_default_pulls_cards_at_two_dbes() {
        let mut e = SecEngine::olcf_default();
        let mut alarms = 0;
        for t in 0..3 {
            for act in e.ingest(&ev(t * 1000, 42, GpuErrorKind::DoubleBitError)) {
                if matches!(act, SecAction::ThresholdAlarm { .. }) {
                    alarms += 1;
                }
            }
        }
        assert_eq!(alarms, 1);
    }
}
