//! # titan-conlog
//!
//! The logging substrate of the study — everything the paper's §2.2
//! ("GPU Errors, Collection and Analysis Methodology") says about how
//! Titan's data was captured:
//!
//! > "The console logs from the Titan supercomputer are parsed using
//! > simple event correlators (SEC) on software management workstations
//! > (SMW) to log critical system events."
//!
//! * [`time`] — the study calendar, Jun 2013 – Feb 2015, with simulation
//!   time ⇄ wall-clock conversions and the month axis used by every
//!   monthly-frequency figure.
//! * [`record`] — the typed console event (node, XID, structure, apid).
//! * [`mod@format`] — the text wire format: rendering events to console-log
//!   lines and the robust parser the analysis pipeline uses. Parsing is
//!   total: garbage lines are counted, never panicked on.
//! * [`sec`] — a simple-event-correlator rule engine: per-card DBE
//!   thresholds, cluster alarms, duplicate suppression — the operator-side
//!   alerting the paper describes.
//! * [`joblog`] — batch job records (user, node list, walltime, GPU
//!   core-hours, memory) matching the job-log + RUR utilization sources
//!   the correlation study (§4) joins against.
//!
//! The crate is deliberately independent of the simulator: the analysis
//! pipeline consumes *only* these formats, mirroring how the paper's
//! authors only saw logs, never ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod joblog;
pub mod record;
pub mod sec;
pub mod time;

pub use format::{parse_line, render_line, rendered_len, ParseStats};
pub use joblog::{Aprun, JobLogError, JobRecord};
pub use record::{ConsoleEvent, Severity};
pub use sec::{SecAction, SecEngine, SecRule, SecStats};
pub use time::{SimTime, StudyCalendar, STUDY_MONTHS, STUDY_SECONDS};
