//! Property-based tests for the SEC rule engine.

use proptest::prelude::*;
use titan_conlog::sec::{rules_from_json, rules_to_json, SecAction, SecEngine, SecRule};
use titan_conlog::ConsoleEvent;
use titan_gpu::GpuErrorKind;
use titan_topology::NodeId;

fn arb_kind() -> impl Strategy<Value = GpuErrorKind> {
    prop::sample::select(vec![
        GpuErrorKind::DoubleBitError,
        GpuErrorKind::OffTheBus,
        GpuErrorKind::GraphicsEngineException,
        GpuErrorKind::EccPageRetirement,
        GpuErrorKind::GpuStoppedProcessing,
    ])
}

fn arb_events(max: usize) -> impl Strategy<Value = Vec<ConsoleEvent>> {
    prop::collection::vec((0u64..10_000, 0u32..40, arb_kind()), 0..max).prop_map(|mut v| {
        v.sort_by_key(|e| e.0);
        v.into_iter()
            .map(|(time, node, kind)| ConsoleEvent {
                time,
                node: NodeId(node),
                kind,
                structure: None,
                page: None,
                apid: None,
            })
            .collect()
    })
}

proptest! {
    /// AlertEach fires exactly once per matching event; suppression only
    /// ever removes alerts.
    #[test]
    fn alert_counts_bounded(events in arb_events(150)) {
        let kind = GpuErrorKind::DoubleBitError;
        let mut plain = SecEngine::new(vec![SecRule::AlertEach { kind }]);
        let alerts = plain
            .ingest_all(&events)
            .into_iter()
            .filter(|a| matches!(a, SecAction::Alert { .. }))
            .count();
        let matching = events.iter().filter(|e| e.kind == kind).count();
        prop_assert_eq!(alerts, matching);

        let mut folded = SecEngine::new(vec![SecRule::SuppressRepeats { kind, window: 60 }]);
        let folded_alerts = folded
            .ingest_all(&events)
            .into_iter()
            .filter(|a| matches!(a, SecAction::Alert { .. }))
            .count();
        prop_assert!(folded_alerts <= matching);
        prop_assert_eq!(folded_alerts + folded.suppressed as usize, matching);
    }

    /// A threshold alarm fires at most once per node, and only when the
    /// node actually reached the count.
    #[test]
    fn threshold_fires_once_per_node(events in arb_events(150), count in 1u32..5) {
        let kind = GpuErrorKind::DoubleBitError;
        let mut engine = SecEngine::new(vec![SecRule::Threshold { kind, count }]);
        let alarms: Vec<SecAction> = engine
            .ingest_all(&events)
            .into_iter()
            .filter(|a| matches!(a, SecAction::ThresholdAlarm { .. }))
            .collect();
        let mut per_node = std::collections::HashMap::<u32, u32>::new();
        for e in &events {
            if e.kind == kind {
                *per_node.entry(e.node.0).or_default() += 1;
            }
        }
        let expected = per_node.values().filter(|&&c| c >= count).count();
        prop_assert_eq!(alarms.len(), expected);
    }

    /// Rule sets survive the JSON config round trip.
    #[test]
    fn rule_json_roundtrip(
        window in 1u64..100_000,
        count in 1u32..100,
        kinds in prop::collection::vec(arb_kind(), 1..6),
    ) {
        let rules: Vec<SecRule> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| match i % 4 {
                0 => SecRule::AlertEach { kind },
                1 => SecRule::SuppressRepeats { kind, window },
                2 => SecRule::Threshold { kind, count },
                _ => SecRule::Cluster { kind, count, window },
            })
            .collect();
        let back = rules_from_json(&rules_to_json(&rules)).unwrap();
        prop_assert_eq!(back, rules);
    }

    /// The engine never panics on arbitrary (time-sorted) input with the
    /// full OLCF rule set.
    #[test]
    fn olcf_rules_total(events in arb_events(200)) {
        let mut engine = SecEngine::olcf_default();
        let _ = engine.ingest_all(&events);
    }
}
