//! Property tests: the log wire formats must round-trip exactly, and the
//! parsers must be total (never panic) on arbitrary input.

use proptest::prelude::*;
use titan_conlog::format::{parse_line, parse_stream, render_line};
use titan_conlog::joblog::{compress_ranges, expand_ranges, JobRecord};
use titan_conlog::time::{StudyCalendar, STUDY_SECONDS};
use titan_conlog::ConsoleEvent;
use titan_gpu::{GpuErrorKind, MemoryStructure};
use titan_topology::NodeId;

fn any_kind() -> impl Strategy<Value = GpuErrorKind> {
    prop::sample::select(
        GpuErrorKind::ALL
            .into_iter()
            .filter(|k| *k != GpuErrorKind::SingleBitError)
            .collect::<Vec<_>>(),
    )
}

fn any_structure() -> impl Strategy<Value = Option<MemoryStructure>> {
    prop::option::of(prop::sample::select(MemoryStructure::ALL.to_vec()))
}

proptest! {
    /// Console event -> line -> event is the identity.
    #[test]
    fn console_roundtrip(
        time in 0u64..STUDY_SECONDS,
        node in 0u32..19_200,
        kind in any_kind(),
        structure in any_structure(),
        page in prop::option::of(any::<u32>()),
        apid in prop::option::of(any::<u64>()),
    ) {
        let ev = ConsoleEvent { time, node: NodeId(node), kind, structure, page, apid };
        let line = render_line(&ev);
        prop_assert_eq!(parse_line(&line), Some(ev), "{}", line);
    }

    /// The line parser never panics and never invents events from noise
    /// that lacks the GPU markers.
    #[test]
    fn parser_total(s in "\\PC{0,200}") {
        let r = parse_line(&s);
        if !s.contains("GPU") {
            prop_assert_eq!(r, None);
        }
    }

    /// Stream parsing conserves lines: parsed + skipped == nonempty lines.
    #[test]
    fn stream_conservation(lines in prop::collection::vec("\\PC{0,80}", 0..30)) {
        let text = lines.join("\n");
        let (events, stats) = parse_stream(&text);
        let nonempty = text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        prop_assert_eq!(stats.parsed + stats.skipped, nonempty);
        prop_assert_eq!(events.len() as u64, stats.parsed);
    }

    /// Node-range compression round-trips through expansion (after
    /// sort+dedup normalization).
    #[test]
    fn ranges_roundtrip(ids in prop::collection::vec(0u32..19_200, 0..200)) {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let mut normalized: Vec<u32> = ids.clone();
        normalized.sort_unstable();
        normalized.dedup();
        let s = compress_ranges(&nodes);
        let back = expand_ranges(&s).unwrap();
        let back_ids: Vec<u32> = back.iter().map(|n| n.0).collect();
        prop_assert_eq!(back_ids, normalized);
    }

    /// Job records round-trip exactly (floats rendered with enough
    /// precision for the analysis tolerances).
    #[test]
    fn job_roundtrip(
        apid in any::<u64>(),
        user in any::<u32>(),
        ids in prop::collection::vec(0u32..19_200, 1..50),
        start in 0u64..STUDY_SECONDS,
        dur in 60u64..86_400,
        gch in 0.0f64..1e6,
        max_mem in 0u64..6_442_450_944,
        tmb in 0.0f64..1e15,
    ) {
        let mut nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let j = JobRecord {
            apid, user, nodes,
            start, end: start + dur,
            gpu_core_hours: (gch * 1e4).round() / 1e4,
            max_memory_bytes: max_mem,
            total_memory_byte_hours: (tmb * 1e4).round() / 1e4,
        };
        let back = JobRecord::parse(&j.render()).unwrap();
        prop_assert_eq!(back.apid, j.apid);
        prop_assert_eq!(back.user, j.user);
        prop_assert_eq!(&back.nodes, &j.nodes);
        prop_assert!((back.gpu_core_hours - j.gpu_core_hours).abs() < 1e-3);
        prop_assert_eq!(back.max_memory_bytes, j.max_memory_bytes);
    }

    /// Timestamp render/parse round-trips across the window.
    #[test]
    fn timestamp_roundtrip(t in 0u64..STUDY_SECONDS) {
        let cal = StudyCalendar;
        prop_assert_eq!(cal.parse_timestamp(&cal.format_timestamp(t)), Some(t));
    }
}
