//! Workspace façade for the Titan GPU reliability reproduction.
//!
//! Re-exports the study API from `titan-reliability` at the crate root
//! and every domain crate as a module, so examples and downstream code
//! need a single dependency:
//!
//! ```no_run
//! use titan_gpu_reliability::{Study, StudyConfig};
//!
//! let study = Study::new(StudyConfig::quick(60, 2015)).run();
//! let figures = study.figures();
//! for e in titan_gpu_reliability::evaluate_all(&figures) {
//!     assert_ne!(e.verdict.to_string(), "FAIL");
//! }
//! ```

// The study layer, flattened to the root like `titan_reliability` itself.
pub use titan_reliability::{
    evaluate_all, full_report, Expectation, Figures, Study, StudyConfig, StudyData, Verdict,
};
pub use titan_reliability::{expectations, figures, render, report, study};

// Domain crates, one module each.
pub use titan_analysis as analysis;
pub use titan_conlog as conlog;
pub use titan_faults as faults;
pub use titan_gpu as gpu;
pub use titan_nvsmi as nvsmi;
pub use titan_obs as obs;
pub use titan_runner as runner;
pub use titan_sim as sim;
pub use titan_stats as stats;
pub use titan_topology as topology;
pub use titan_workload as workload;
