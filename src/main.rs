//! `titan-repro` — the command-line front end of the reproduction.
//!
//! ```text
//! titan-repro taxonomy                      Tables 1 & 2 (XID taxonomy)
//! titan-repro run   [--days N] [--seed S] [--metrics FILE]
//!                                           simulate and print the report
//! titan-repro check [--days N] [--seed S] [--metrics FILE] [--json FILE]
//!                                           evaluate paper-shape checks;
//!                                           exit 1 on any FAIL
//! titan-repro logs  [--days N] [--seed S] --out DIR
//!                                           write console/job/aprun logs
//! titan-repro replicate --seeds N [--threads T] [--days D] [--seed S]
//!                       [--skip-expectations] [--out FILE.json]
//!                       [--metrics FILE.json]
//!                                           run N seeds in parallel and
//!                                           report mean/95% CI bands
//! titan-repro profile [--days N] [--seed S] [--metrics FILE]
//!                                           run a window and print the
//!                                           titan-prof/2 deterministic
//!                                           cost ledger plus a wall-clock
//!                                           attribution table
//! ```
//!
//! Without `--days` the full Jun'13–Feb'15 window runs (about two
//! minutes in release). Everything is seed-deterministic: the same
//! seed and window produce byte-identical output.
//!
//! Time domains: the metrics documents written by `--metrics` carry
//! sim-time quantities only and are byte-identical across thread
//! widths; wall-clock timing appears exclusively in `profile` output
//! and the quarantined `wall` section of `titan-prof/2` (this binary is
//! outside the engine, so `std::time` is allowed here — see
//! OBSERVABILITY.md and lint rule D5).

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;
use std::time::{Duration, Instant};

use titan_gpu_reliability::gpu::{ErrorCategory, GpuErrorKind};
use titan_gpu_reliability::sim::Simulator;
use titan_gpu_reliability::{evaluate_all, full_report, Study, StudyConfig, Verdict};
use titan_obs::Obs;

/// Process-wide allocation accounting for the `titan-prof/2` cost
/// ledger. The engine crates all `#![forbid(unsafe_code)]`, so the
/// counting allocator lives here in the binary and reaches the ledger
/// as a plain `fn() -> AllocStats` probe pointer.
///
/// The counters are thread-local `Cell`s: a `GlobalAlloc` impl must not
/// allocate, lock, or panic, and the engine is strictly single-threaded
/// by design (lint rule D4), so the engine thread's cells observe every
/// engine allocation and the probe's deltas are deterministic — rayon
/// replication workers each count their own thread without contending.
mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
        static BYTES: Cell<u64> = const { Cell::new(0) };
        static FREES: Cell<u64> = const { Cell::new(0) };
    }

    /// Pass-through system allocator that counts per-thread traffic.
    pub struct CountingAlloc;

    // SAFETY: defers every allocation to `System`; the bookkeeping is
    // plain `Cell` arithmetic on already-initialized thread-locals
    // (`try_with` makes the TLS-teardown window a silent no-op).
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
                let _ =
                    BYTES.try_with(|c| c.set(c.get().wrapping_add(layout.size() as u64)));
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            let _ = FREES.try_with(|c| c.set(c.get().wrapping_add(1)));
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                // A realloc retires one block and produces another.
                let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
                let _ = BYTES.try_with(|c| c.set(c.get().wrapping_add(new_size as u64)));
                let _ = FREES.try_with(|c| c.set(c.get().wrapping_add(1)));
            }
            p
        }
    }

    /// Monotone allocation totals for the calling thread — the ledger
    /// snapshots these at every scope switch and charges the delta.
    pub fn probe() -> titan_obs::AllocStats {
        titan_obs::AllocStats {
            allocs: ALLOCS.try_with(Cell::get).unwrap_or(0),
            bytes: BYTES.try_with(Cell::get).unwrap_or(0),
            frees: FREES.try_with(Cell::get).unwrap_or(0),
        }
    }
}

#[global_allocator]
static GLOBAL_ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

/// Subcommands that accept `--json`, for the rejection message every
/// other subcommand prints.
const JSON_SUBCOMMANDS: &[&str] = &["check", "profile"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "taxonomy" => taxonomy(&args[1..]),
        "run" => run(&args[1..]),
        "check" => check(&args[1..]),
        "logs" => logs(&args[1..]),
        "replicate" => replicate(&args[1..]),
        "profile" => profile(&args[1..]),
        "trace" => trace_cmd(&args[1..]),
        // lint: allow(P2, first() returned Some above, so index 1.. is in bounds)
        "health" => health_cmd(&args[1..]),
        "ckpt" => ckpt_cmd(&args[1..]),
        // lint: allow(P2, first() returned Some above, so index 1.. is in bounds)
        "bench" => bench_cmd(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: titan-repro <command> [options]

commands:
  taxonomy                          print Tables 1 & 2 (the XID taxonomy)
  run   [--days N] [--seed S] [--metrics FILE] [--trace FILE] [--health FILE]
        [--prof FILE] [--span-capacity N]
        [--checkpoint-every SECS --ckpt-dir DIR] [--from-checkpoint FILE]
                                    simulate and print the full report;
                                    --metrics writes the sim-time telemetry
                                    document (stable JSON, seed-deterministic);
                                    --trace writes the titan-trace/1 causal
                                    flight-recorder JSONL;
                                    --health writes the titan-health/1 online
                                    reliability-analytics JSONL (rolling MTBF,
                                    spatial heat, top offenders, fired alerts);
                                    --prof arms the deterministic cost ledger
                                    and writes the titan-prof/2 document;
                                    --checkpoint-every freezes the full machine
                                    state into DIR/ckpt-NNNNNN.json (titan-ckpt/1,
                                    hash-chained) every SECS sim seconds;
                                    --from-checkpoint resumes one and reproduces
                                    the run-through output byte for byte (use the
                                    same --metrics/--trace/--health/--prof flags
                                    as the original)
  check [--days N] [--seed S] [--metrics FILE] [--json FILE] [--health FILE]
        [--span-capacity N]
                                    run the paper-shape checks; exit 1 on FAIL;
                                    --json writes per-check verdicts as JSON
  logs  [--days N] [--seed S] --out DIR
                                    write console.log / job.log / aprun.log
  replicate --seeds N [--threads T] [--days D] [--seed S]
            [--skip-expectations] [--out FILE.json] [--metrics FILE.json]
            [--trace DIR] [--health DIR]
                                    run N independent seeds across T threads
                                    (default: all cores) and report mean/95% CI
                                    bands; per-seed output is byte-identical
                                    to a sequential run of the same seed;
                                    --metrics writes per-seed telemetry
                                    documents plus aggregate metric bands;
                                    --trace writes DIR/trace-seed-<seed>.jsonl
                                    per seed; --health writes
                                    DIR/health-seed-<seed>.jsonl per seed
  profile [--days N] [--seed S] [--metrics FILE] [--json FILE] [--health FILE]
          [--flamegraph FILE] [--perfetto FILE] [--span-capacity N]
                                    run one window with the titan-prof/2 cost
                                    ledger armed and print the deterministic
                                    per-scope cost table plus a quarantined
                                    wall-clock attribution table;
                                    --json writes the titan-prof/2 document
                                    (the titan-profile/1 wall-phase table is
                                    retired); --flamegraph writes collapsed
                                    stacks (flamegraph.pl / inferno input);
                                    --perfetto writes Chrome/Perfetto counter
                                    tracks from the sim-time series
  health <summarize|watch|rules> FILE [--trace TRACEFILE]
                                    inspect a titan-health/1 JSONL: summarize
                                    prints the end-of-run fleet summary; watch
                                    replays the interval stream as deterministic
                                    heatmap frames; rules prints the default
                                    alert-rule set as JSON; --trace additionally
                                    walks every fired alert back to its causing
                                    fault draft in the given titan-trace/1 file
                                    (exit 1 on a provenance hole)
  trace <verify|summarize|show> FILE
        [--card N] [--node N] [--job APID] [--window LO:HI] [--chrome FILE]
                                    inspect a titan-trace/1 JSONL: verify walks
                                    every alert/retirement back to an injected
                                    fault draft (exit 1 on provenance holes);
                                    summarize prints per-kind counts; show
                                    prints matching records; --chrome exports
                                    Chrome trace events (open in Perfetto)
  ckpt <verify|bisect> ...
                                    verify FILE: recompute a checkpoint's chained
                                    digest and report its provenance;
                                    bisect DIR_A DIR_B: compare two runs'
                                    checkpoint chains and report the first
                                    interval whose chained digest diverges
  bench diff A.json B.json
                                    compare two bench_pr snapshots (BENCH_PR*.json)
                                    and attribute the events/sec delta to the
                                    deterministic per-kind cost ledger they embed

Without --days the full 21-month study window runs (~2 min in release).";

/// Parsed common options.
struct Opts {
    days: Option<u64>,
    seed: Option<u64>,
    out: Option<String>,
    metrics: Option<String>,
    json: Option<String>,
    trace: Option<String>,
    health: Option<String>,
    prof: Option<String>,
    flamegraph: Option<String>,
    perfetto: Option<String>,
    span_capacity: Option<usize>,
    checkpoint_every: Option<u64>,
    ckpt_dir: Option<String>,
    from_checkpoint: Option<String>,
    inject_divergence: Option<u64>,
}

impl Opts {
    /// True when any checkpoint/restore flag was given (only `run`
    /// accepts them).
    fn any_checkpoint_flag(&self) -> bool {
        self.checkpoint_every.is_some()
            || self.ckpt_dir.is_some()
            || self.from_checkpoint.is_some()
            || self.inject_divergence.is_some()
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        days: None,
        seed: None,
        out: None,
        metrics: None,
        json: None,
        trace: None,
        health: None,
        prof: None,
        flamegraph: None,
        perfetto: None,
        span_capacity: None,
        checkpoint_every: None,
        ckpt_dir: None,
        from_checkpoint: None,
        inject_divergence: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                opts.days = Some(
                    v.parse()
                        .map_err(|_| format!("--days: `{v}` is not a non-negative integer"))?,
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: `{v}` is not a non-negative integer"))?,
                );
            }
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file")?.clone());
            }
            "--json" => {
                opts.json = Some(it.next().ok_or("--json needs a file")?.clone());
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--health" => {
                opts.health = Some(it.next().ok_or("--health needs a file")?.clone());
            }
            "--prof" => {
                opts.prof = Some(it.next().ok_or("--prof needs a file")?.clone());
            }
            "--flamegraph" => {
                opts.flamegraph = Some(it.next().ok_or("--flamegraph needs a file")?.clone());
            }
            "--perfetto" => {
                opts.perfetto = Some(it.next().ok_or("--perfetto needs a file")?.clone());
            }
            "--span-capacity" => {
                let v = it.next().ok_or("--span-capacity needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--span-capacity: `{v}` is not a positive integer"))?;
                if n == 0 {
                    return Err("--span-capacity must be at least 1".into());
                }
                opts.span_capacity = Some(n);
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs sim seconds")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--checkpoint-every: `{v}` is not a positive integer"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1 sim second".into());
                }
                opts.checkpoint_every = Some(n);
            }
            "--ckpt-dir" => {
                opts.ckpt_dir = Some(it.next().ok_or("--ckpt-dir needs a directory")?.clone());
            }
            "--from-checkpoint" => {
                opts.from_checkpoint =
                    Some(it.next().ok_or("--from-checkpoint needs a file")?.clone());
            }
            "--inject-divergence" => {
                let v = it.next().ok_or("--inject-divergence needs sim seconds")?;
                opts.inject_divergence = Some(v.parse().map_err(|_| {
                    format!("--inject-divergence: `{v}` is not a non-negative integer")
                })?);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Builds a validated study config from the common options.
fn study_config(opts: &Opts) -> Result<StudyConfig, String> {
    let mut config = match opts.days {
        Some(days) => StudyConfig::quick(days, opts.seed.unwrap_or(0x7174_414E)),
        None => StudyConfig::default(),
    };
    if let Some(seed) = opts.seed {
        config.sim.seed = seed;
    }
    config
        .sim
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(config)
}

fn write_text(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Runs a study, collecting telemetry only when the sink is enabled
/// (`--metrics`, or always under `profile`). Collection never perturbs
/// the run — the digest-equality tests in `titan-runner` pin that — so
/// the printed report is identical either way.
fn run_study(
    config: StudyConfig,
    obs: &mut Obs,
) -> (
    titan_gpu_reliability::study::CompletedStudy,
    Option<titan_runner::MetricsDoc>,
) {
    let seed = config.sim.seed;
    let window = config.sim.window;
    let study = Study::new(config).run_with_obs(obs);
    // Collection also runs for a trace-only capture: the SEC replay and
    // nvsmi rollup it performs mint the collect-time trace records.
    let doc = if obs.is_enabled() || obs.trace_enabled() {
        obs.phase("cli:collect_metrics");
        let doc = titan_runner::collect_metrics(&study.sim, seed, window, obs);
        obs.is_enabled().then_some(doc)
    } else {
        None
    };
    (study, doc)
}

/// Builds the CLI's observability sink from the common options.
fn build_obs(opts: &Opts, metrics_on: bool) -> Obs {
    let mut obs = match opts.span_capacity {
        Some(cap) => Obs::with_span_capacity(metrics_on, cap),
        None => Obs::new(metrics_on),
    };
    if opts.trace.is_some() {
        obs.enable_trace();
    }
    if opts.health.is_some() {
        obs.enable_health();
    }
    obs
}

fn taxonomy(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("taxonomy takes no options\n{USAGE}"));
    }
    println!("Table 1 — hardware (and ambiguous) GPU errors:");
    for k in GpuErrorKind::ALL {
        if matches!(
            k.category(),
            ErrorCategory::Hardware | ErrorCategory::Ambiguous
        ) {
            print_kind(k);
        }
    }
    println!();
    println!("Table 2 — software/firmware (and ambiguous) GPU errors:");
    for k in GpuErrorKind::ALL {
        if matches!(
            k.category(),
            ErrorCategory::SoftwareFirmware | ErrorCategory::Ambiguous
        ) {
            print_kind(k);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn print_kind(k: GpuErrorKind) {
    let xid = match k.xid() {
        Some(x) => format!("XID {:>3}", x.0),
        None => "no XID ".to_string(),
    };
    println!("  {xid}  {}", k.description());
}

/// Builds the `--ckpt-dir` writer: each sealed checkpoint document goes
/// to `DIR/ckpt-<index>.json` the moment its boundary is reached.
/// Progress chatter goes to **stderr** so stdout stays byte-comparable
/// between checkpointed, plain, and resumed runs.
fn checkpoint_sink(
    dir: Option<String>,
) -> Result<impl FnMut(&titan_runner::CheckpointDoc) -> Result<(), String>, String> {
    if let Some(d) = &dir {
        std::fs::create_dir_all(d).map_err(|e| format!("create {d}: {e}"))?;
    }
    Ok(move |doc: &titan_runner::CheckpointDoc| {
        let Some(d) = &dir else { return Ok(()) };
        let path = format!("{d}/ckpt-{:06}.json", doc.index);
        std::fs::write(&path, titan_runner::render_checkpoint(doc))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "checkpoint {:>3}  t = {:>10} s  digest {:016x}  -> {path}",
            doc.index, doc.t, doc.digest
        );
        Ok(())
    })
}

/// The shared tail of every `run` variant: collect telemetry, print the
/// report, write the artifacts. Identical on the straight-through,
/// checkpointing, and resumed paths — that is what makes their stdout,
/// metrics, and trace byte-comparable.
fn finish_run(
    study: &titan_gpu_reliability::study::CompletedStudy,
    obs: &mut Obs,
    opts: &Opts,
    seed: u64,
    window: u64,
    prof_clock: Option<Rc<RefCell<KindClock>>>,
) -> Result<ExitCode, String> {
    let doc = if obs.is_enabled() || obs.trace_enabled() {
        obs.phase("cli:collect_metrics");
        let doc = titan_runner::collect_metrics(&study.sim, seed, window, obs);
        obs.is_enabled().then_some(doc)
    } else {
        None
    };
    println!("{}", full_report(study));
    if let (Some(path), Some(doc)) = (&opts.metrics, &doc) {
        write_text(path, &doc.to_json())?;
    }
    if let Some(path) = &opts.trace {
        write_text(path, &obs.stream.render_jsonl(seed, window / 86_400))?;
    }
    if let Some(path) = &opts.health {
        write_text(path, &obs.health.render_jsonl(seed, window / 86_400))?;
    }
    if let Some(path) = &opts.prof {
        // The ledger is closed only now, so the report rendering above is
        // attributed (to cli:collect_metrics) like everything else.
        obs.prof_finish();
        let wall = match &prof_clock {
            Some(clock) => clock.borrow_mut().finish(),
            None => return Err("prof clock missing (internal error)".into()),
        };
        let metrics = doc.ok_or("prof collected no telemetry (internal error)")?;
        let prof_doc =
            titan_obs::ProfDoc::build(obs.prof_ledger(), seed, window / 86_400, metrics, wall);
        write_text(path, &prof_doc.to_json())?;
    }
    Ok(ExitCode::SUCCESS)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.json.is_some() {
        return Err(json_rejection());
    }
    if opts.flamegraph.is_some() || opts.perfetto.is_some() {
        return Err("--flamegraph and --perfetto apply to `profile` only".into());
    }
    if opts.checkpoint_every.is_some() != opts.ckpt_dir.is_some() {
        return Err("--checkpoint-every and --ckpt-dir must be given together".into());
    }
    if opts.inject_divergence.is_some()
        && opts.checkpoint_every.is_none()
        && opts.from_checkpoint.is_none()
    {
        return Err(
            "--inject-divergence is for validating `ckpt bisect`; combine it with \
             --checkpoint-every or --from-checkpoint"
                .into(),
        );
    }
    let every = opts.checkpoint_every.unwrap_or(0);

    // Resume: the checkpoint carries the full configuration.
    if let Some(path) = &opts.from_checkpoint {
        if opts.days.is_some() || opts.seed.is_some() {
            return Err(
                "--from-checkpoint carries its own configuration; drop --days/--seed".into(),
            );
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let ck = titan_runner::parse_checkpoint(&text)?;
        // Health state rides the ObsSnapshot: a flag mismatch cannot be
        // papered over (the resumed doc would silently restart from an
        // empty sink), so reject it up front instead of diverging.
        if ck.obs.health_enabled() != opts.health.is_some() {
            return Err(if opts.health.is_some() {
                format!(
                    "--from-checkpoint {path}: the checkpoint was written without --health; \
                     resume with the same flags as the original run"
                )
            } else {
                format!(
                    "--from-checkpoint {path}: the checkpoint was written with --health; \
                     pass --health FILE to resume it"
                )
            });
        }
        // The cost ledger rides the same snapshot; a `--prof` mismatch
        // would silently restart the scope table from zero, so reject it
        // up front exactly like the health flag.
        if ck.obs.prof_enabled() != opts.prof.is_some() {
            return Err(if opts.prof.is_some() {
                format!(
                    "--from-checkpoint {path}: the checkpoint was written without --prof; \
                     resume with the same flags as the original run"
                )
            } else {
                format!(
                    "--from-checkpoint {path}: the checkpoint was written with --prof; \
                     pass --prof FILE to resume it"
                )
            });
        }
        let seed = ck.seed;
        let window = ck.config.sim.window;
        eprintln!(
            "resuming from checkpoint {} (t = {} s, digest {:016x})",
            ck.index, ck.t, ck.digest
        );
        let mut obs = build_obs(&opts, opts.metrics.is_some() || opts.prof.is_some());
        let prof_clock = opts.prof.is_some().then(|| arm_prof(&mut obs));
        let sink = checkpoint_sink(opts.ckpt_dir.clone())?;
        let study =
            titan_runner::resume_checkpointed(&ck, every, opts.inject_divergence, &mut obs, sink)?;
        return finish_run(&study, &mut obs, &opts, seed, window, prof_clock);
    }

    let config = study_config(&opts)?;
    let seed = config.sim.seed;
    let window = config.sim.window;
    // `--prof` embeds the metrics document in titan-prof/2, so the sink
    // comes on with it (collection never perturbs the run — the
    // digest-equality tests in `titan-runner` pin that).
    let mut obs = build_obs(&opts, opts.metrics.is_some() || opts.prof.is_some());
    let prof_clock = opts.prof.is_some().then(|| arm_prof(&mut obs));

    // Checkpointing run: the runner drives the engine in boundary-sized
    // steps; output is byte-identical to the plain path below.
    if every > 0 {
        let sink = checkpoint_sink(opts.ckpt_dir.clone())?;
        let study =
            titan_runner::run_checkpointed(&config, every, opts.inject_divergence, &mut obs, sink)?;
        return finish_run(&study, &mut obs, &opts, seed, window, prof_clock);
    }

    let study = Study::new(config).run_with_obs(&mut obs);
    finish_run(&study, &mut obs, &opts, seed, window, prof_clock)
}

/// Builds the `--json applies to …` rejection from the actual list of
/// subcommands that accept the flag, so the message can never drift from
/// the dispatch table.
fn json_rejection() -> String {
    let list: Vec<String> = JSON_SUBCOMMANDS.iter().map(|s| format!("`{s}`")).collect();
    format!("--json applies to {} only", list.join(" and "))
}

/// The `ckpt` subcommand: offline tooling over `titan-ckpt/1` files.
fn ckpt_cmd(args: &[String]) -> Result<ExitCode, String> {
    let Some(mode) = args.first() else {
        return Err(format!("ckpt needs a mode (verify | bisect)\n{USAGE}"));
    };
    match mode.as_str() {
        "verify" => {
            let [_, file] = args else {
                return Err("usage: ckpt verify FILE".into());
            };
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
            let doc = titan_runner::parse_checkpoint(&text)?;
            println!(
                "{file}: checkpoint {} of seed {} ({} days), t = {} s, digest {:016x} \
                 (chained over {:016x}) — digest OK",
                doc.index, doc.seed, doc.window_days, doc.t, doc.digest, doc.prev_digest
            );
            Ok(ExitCode::SUCCESS)
        }
        "bisect" => {
            let [_, dir_a, dir_b] = args else {
                return Err("usage: ckpt bisect DIR_A DIR_B".into());
            };
            let a = load_checkpoint_chain(dir_a)?;
            let b = load_checkpoint_chain(dir_b)?;
            println!(
                "run A: {} checkpoints ({dir_a}), run B: {} checkpoints ({dir_b})",
                a.len(),
                b.len()
            );
            let report = titan_runner::bisect(&a, &b)?;
            match report.divergence {
                Some(d) => {
                    println!(
                        "first divergence at checkpoint {}: the runs diverged in \
                         ({} s, {} s] — chained digests agree through t = {} s",
                        d.index, d.t_lo, d.t_hi, d.t_lo
                    );
                }
                None => {
                    println!(
                        "chains agree through all {} compared checkpoints — no divergence",
                        report.compared
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown ckpt mode `{other}`\n{USAGE}")),
    }
}

/// Loads every `ckpt-*.json` in `dir`, digest-verifying each, sorted by
/// checkpoint index.
fn load_checkpoint_chain(dir: &str) -> Result<Vec<titan_runner::CheckpointDoc>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("{dir}: no ckpt-*.json checkpoint files"));
    }
    let mut docs = Vec::new();
    for name in names {
        let path = format!("{dir}/{name}");
        let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        docs.push(titan_runner::parse_checkpoint(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    docs.sort_by_key(|d| d.index);
    Ok(docs)
}

/// The `single_run` section of a bench_pr snapshot (every field is
/// optional: older snapshots predate some of them, and the vendored
/// serde maps a missing key to `None`).
#[derive(serde::Deserialize)]
struct BenchSingleRun {
    window_days: Option<u64>,
    events: Option<u64>,
    events_per_sec: Option<f64>,
    wall_seconds: Option<f64>,
}

/// The `prof` section a `titan-prof/2`-aware bench_pr embeds: the
/// deterministic per-scope ledger of the snapshot's single run.
#[derive(serde::Deserialize)]
struct BenchProfSection {
    kinds: Option<std::collections::BTreeMap<String, titan_obs::KindCost>>,
}

/// The slice of a `BENCH_PR*.json` snapshot `bench diff` reads. Extra
/// keys in the file are ignored, so one parser covers every snapshot
/// vintage.
#[derive(serde::Deserialize)]
struct BenchSnapshot {
    pr: Option<u64>,
    mode: Option<String>,
    single_run: Option<BenchSingleRun>,
    prof: Option<BenchProfSection>,
}

fn read_bench_snapshot(path: &str) -> Result<BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// The `bench` subcommand: offline tooling over bench_pr snapshots
/// (`BENCH_PR*.json`, written by `cargo run --release -p titan-bench
/// --bin bench_pr`). `diff` explains an events/sec delta between two
/// snapshots in terms of the deterministic cost ledger they embed —
/// count deltas are seed-deterministic, so a throughput change splits
/// cleanly into "the workload mix changed" (counts moved) versus "the
/// per-event cost changed" (counts held, wall moved).
fn bench_cmd(args: &[String]) -> Result<ExitCode, String> {
    let Some(mode) = args.first() else {
        return Err(format!("bench needs a mode (diff)\n{USAGE}"));
    };
    match mode.as_str() {
        "diff" => {
            let [_, a_path, b_path] = args else {
                return Err("usage: bench diff A.json B.json".into());
            };
            let a = read_bench_snapshot(a_path)?;
            let b = read_bench_snapshot(b_path)?;
            print_bench_diff(&a, &b, a_path, b_path);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown bench mode `{other}`\n{USAGE}")),
    }
}

fn print_bench_diff(a: &BenchSnapshot, b: &BenchSnapshot, a_path: &str, b_path: &str) {
    let label = |s: &BenchSnapshot, path: &str| {
        format!(
            "{path} (pr {}, {} mode)",
            s.pr.map_or("?".to_string(), |p| p.to_string()),
            s.mode.as_deref().unwrap_or("?")
        )
    };
    println!("bench diff: {}", label(a, a_path));
    println!("         -> {}", label(b, b_path));
    if a.mode != b.mode {
        println!("note: the snapshots ran different modes; walls are not comparable");
    }
    let field = |s: &BenchSnapshot, f: fn(&BenchSingleRun) -> Option<f64>| {
        s.single_run.as_ref().and_then(f)
    };
    let rows: [(&str, fn(&BenchSingleRun) -> Option<f64>); 4] = [
        // lint: allow(N1, u64 event counts are far below f64's exact-integer range)
        ("window_days", |r| r.window_days.map(|v| v as f64)),
        // lint: allow(N1, u64 event counts are far below f64's exact-integer range)
        ("events", |r| r.events.map(|v| v as f64)),
        ("wall_seconds", |r| r.wall_seconds),
        ("events_per_sec", |r| r.events_per_sec),
    ];
    for (name, get) in rows {
        match (field(a, get), field(b, get)) {
            (Some(va), Some(vb)) => {
                let pct = if va != 0.0 { (vb - va) / va * 100.0 } else { 0.0 };
                println!("  {name:<16} {va:>14.2} -> {vb:>14.2}  ({pct:+.1}%)");
            }
            _ => println!("  {name:<16} (absent from one snapshot)"),
        }
    }
    let (Some(ka), Some(kb)) = (
        a.prof.as_ref().and_then(|p| p.kinds.as_ref()),
        b.prof.as_ref().and_then(|p| p.kinds.as_ref()),
    ) else {
        println!(
            "no deterministic ledger in one of the snapshots (written by a \
             pre-titan-prof/2 bench_pr) — per-kind attribution unavailable"
        );
        return;
    };
    // Union of scopes, sorted by the magnitude of the dequeue delta:
    // the scopes that moved the most work lead the attribution.
    let mut names: Vec<&String> = ka.keys().chain(kb.keys()).collect();
    names.sort();
    names.dedup();
    let zero = titan_obs::KindCost::default();
    let mut deltas: Vec<(&String, i128, i128, i128)> = names
        .iter()
        .map(|name| {
            let ca = ka.get(*name).unwrap_or(&zero);
            let cb = kb.get(*name).unwrap_or(&zero);
            (
                *name,
                i128::from(cb.dequeues) - i128::from(ca.dequeues),
                i128::from(cb.rng_draws) - i128::from(ca.rng_draws),
                i128::from(cb.allocs) - i128::from(ca.allocs),
            )
        })
        .collect();
    deltas.sort_by_key(|&(name, dq, rng, al)| {
        (std::cmp::Reverse(dq.abs().max(rng.abs()).max(al.abs())), name.clone())
    });
    let total_dq: i128 = deltas.iter().map(|&(_, dq, _, _)| dq.abs()).sum();
    println!();
    println!("deterministic ledger deltas (B - A, seed-deterministic counts):");
    println!(
        "  {:<28} {:>12} {:>14} {:>12} {:>7}",
        "scope", "dequeues", "rng_draws", "allocs", "share"
    );
    let mut moved = false;
    for (name, dq, rng, al) in &deltas {
        if *dq == 0 && *rng == 0 && *al == 0 {
            continue;
        }
        moved = true;
        let share = if total_dq > 0 {
            format!("{:>6.1}%", (dq.abs() as f64) / (total_dq as f64) * 100.0)
        } else {
            "     —".to_string()
        };
        println!("  {name:<28} {dq:>+12} {rng:>+14} {al:>+12} {share}");
    }
    if !moved {
        println!(
            "  (no scope moved — the event mix is identical; any events/sec \
             delta is host or per-event cost, not workload)"
        );
    }
}

/// One line of the `check --json` document.
#[derive(serde::Serialize)]
struct CheckVerdict {
    id: String,
    verdict: String,
    paper: String,
    measured: String,
}

/// The `check --json` document: machine-readable per-check verdicts.
#[derive(serde::Serialize)]
struct CheckDoc {
    schema: String,
    seed: u64,
    window_days: u64,
    pass: u32,
    weak: u32,
    fail: u32,
    checks: Vec<CheckVerdict>,
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.trace.is_some() {
        return Err("--trace applies to `run` and `replicate` only".into());
    }
    if opts.prof.is_some() {
        return Err("--prof applies to `run` only (profile always arms the ledger)".into());
    }
    if opts.flamegraph.is_some() || opts.perfetto.is_some() {
        return Err("--flamegraph and --perfetto apply to `profile` only".into());
    }
    if opts.any_checkpoint_flag() {
        return Err("checkpoint flags apply to `run` only".into());
    }
    let config = study_config(&opts)?;
    let seed = config.sim.seed;
    let window_days = config.sim.window / 86_400;
    let mut obs = build_obs(&opts, opts.metrics.is_some());
    let (study, doc) = run_study(config, &mut obs);
    let figures = study.figures();
    let (mut pass, mut weak, mut fail) = (0u32, 0u32, 0u32);
    let mut checks = Vec::new();
    for e in evaluate_all(&figures) {
        println!("[{}] {:<6} {}", e.verdict, e.id, e.measured);
        match e.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Weak => weak += 1,
            Verdict::Fail => fail += 1,
        }
        checks.push(CheckVerdict {
            id: e.id,
            verdict: e.verdict.to_string(),
            paper: e.paper,
            measured: e.measured,
        });
    }
    println!("{pass} PASS / {weak} WEAK / {fail} FAIL");
    if let Some(path) = &opts.json {
        let doc = CheckDoc {
            schema: "titan-check/1".to_string(),
            seed,
            window_days,
            pass,
            weak,
            fail,
            checks,
        };
        let mut json = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("serialize checks: {e}"))?;
        json.push('\n');
        write_text(path, &json)?;
    }
    if let (Some(path), Some(doc)) = (&opts.metrics, &doc) {
        write_text(path, &doc.to_json())?;
    }
    if let Some(path) = &opts.health {
        write_text(path, &obs.health.render_jsonl(seed, window_days))?;
    }
    if fail > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn replicate(args: &[String]) -> Result<ExitCode, String> {
    let mut days: Option<u64> = None;
    let mut base_seed: u64 = 0x7174_414E;
    let mut seeds: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut health_dir: Option<String> = None;
    let mut skip_expectations = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name}: `{v}` is not a non-negative integer"))
        };
        match flag.as_str() {
            "--days" => days = Some(num("--days")?),
            "--seed" => base_seed = num("--seed")?,
            "--seeds" => seeds = Some(num("--seeds")?),
            "--threads" => threads = Some(num("--threads")? as usize),
            "--skip-expectations" => skip_expectations = true,
            "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
            "--metrics" => {
                metrics = Some(it.next().ok_or("--metrics needs a file")?.clone());
            }
            "--trace" => {
                trace_dir = Some(it.next().ok_or("--trace needs a directory")?.clone());
            }
            "--health" => {
                health_dir = Some(it.next().ok_or("--health needs a directory")?.clone());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let n = seeds.ok_or("replicate requires --seeds N")?;
    if n == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let base = match days {
        Some(d) => StudyConfig::quick(d, base_seed),
        None => {
            let mut c = StudyConfig::default();
            c.sim.seed = base_seed;
            c
        }
    };
    let threads = threads.unwrap_or_else(titan_runner::recommended_threads);
    let mut opts = titan_runner::ReplicateOptions::consecutive(base, base_seed, n, threads)?;
    opts.skip_expectations = skip_expectations;
    opts.collect_obs = metrics.is_some();
    opts.collect_trace = trace_dir.is_some();
    opts.collect_health = health_dir.is_some();
    let (report, traces, healths) = titan_runner::replicate_full(&opts)?;
    print!("{}", titan_runner::render_report(&report));
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
        for (run, trace) in report.runs.iter().zip(&traces) {
            let Some(text) = trace else {
                return Err("replicate produced no trace (internal error)".into());
            };
            write_text(&format!("{dir}/trace-seed-{}.jsonl", run.seed), text)?;
        }
    }
    if let Some(dir) = health_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
        for (run, health) in report.runs.iter().zip(&healths) {
            let Some(text) = health else {
                return Err("replicate produced no health doc (internal error)".into());
            };
            write_text(&format!("{dir}/health-seed-{}.jsonl", run.seed), text)?;
        }
    }
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = metrics {
        let doc = titan_runner::obs_replicate_doc(&report)
            .ok_or("replicate produced no telemetry (internal error)")?;
        write_text(&path, &titan_runner::render_obs_metrics_json(&doc))?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Wall-clock scope ledger the cost ledger's edge hook writes into. This
/// is the only place in the workspace where scope markers meet
/// `Instant`: the engine emits pure `&'static str` edges (phase markers
/// and `ev:` kind names), and this CLI timestamps them on arrival (lint
/// rule D5 keeps it that way). Unlike the retired `PhaseClock`, scopes
/// repeat — every row is find-or-push accumulated.
struct KindClock {
    started: Instant,
    current: Option<(&'static str, Instant)>,
    scopes: Vec<(&'static str, Duration, u64)>,
}

impl KindClock {
    fn new() -> Self {
        KindClock {
            started: Instant::now(),
            current: None,
            scopes: Vec::new(),
        }
    }

    fn mark(&mut self, name: &'static str) {
        let now = Instant::now();
        if let Some((prev, t0)) = self.current.take() {
            self.credit(prev, now.duration_since(t0));
        }
        self.current = Some((name, now));
    }

    fn credit(&mut self, name: &'static str, d: Duration) {
        match self.scopes.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, total, switches)) => {
                *total += d;
                *switches += 1;
            }
            None => self.scopes.push((name, d, 1)),
        }
    }

    /// Closes the open scope and renders the quarantined wall section:
    /// rows largest-first, attribution percentage against the time since
    /// the ledger was armed.
    fn finish(&mut self) -> titan_obs::WallDoc {
        let now = Instant::now();
        if let Some((prev, t0)) = self.current.take() {
            self.credit(prev, now.duration_since(t0));
        }
        let total_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let attributed_ms: f64 =
            self.scopes.iter().map(|(_, d, _)| d.as_secs_f64() * 1e3).sum();
        let mut scopes: Vec<titan_obs::WallScope> = self
            .scopes
            .iter()
            .map(|(name, d, switches)| titan_obs::WallScope {
                name: (*name).to_string(),
                wall_ms: d.as_secs_f64() * 1e3,
                switches: *switches,
            })
            .collect();
        scopes.sort_by(|a, b| {
            b.wall_ms.partial_cmp(&a.wall_ms).unwrap_or(std::cmp::Ordering::Equal)
        });
        titan_obs::WallDoc {
            total_ms,
            attributed_ms,
            attributed_pct: if total_ms > 0.0 { attributed_ms / total_ms * 100.0 } else { 0.0 },
            scopes,
        }
    }
}

/// Arms the `titan-prof/2` cost ledger on `obs`: collection on, the
/// binary's allocator probe installed, and the wall-clock edge hook
/// wired to a fresh [`KindClock`] whose epoch starts now.
fn arm_prof(obs: &mut Obs) -> Rc<RefCell<KindClock>> {
    let clock = Rc::new(RefCell::new(KindClock::new()));
    obs.enable_prof();
    obs.set_prof_alloc_probe(alloc_track::probe);
    let hook = Rc::clone(&clock);
    obs.set_prof_wall_hook(Box::new(move |name| hook.borrow_mut().mark(name)));
    clock
}

fn profile(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.out.is_some() || opts.trace.is_some() || opts.prof.is_some()
        || opts.any_checkpoint_flag()
    {
        return Err(
            "profile takes --days / --seed / --metrics / --json / --health / \
             --flamegraph / --perfetto only (the ledger is always armed here; \
             `run --prof` writes the same document from a plain run)"
                .into(),
        );
    }
    let config = study_config(&opts)?;
    let seed = config.sim.seed;
    let window_days = config.sim.window / 86_400;

    let mut obs = build_obs(&opts, true);
    // Health collection is always on under `profile`, so the ledger (and
    // the titan-prof/2 document) exposes what the online analytics layer
    // costs on top of the metrics sink.
    obs.enable_health();
    let clock = arm_prof(&mut obs);

    let (study, doc) = run_study(config, &mut obs);
    obs.phase("cli:figures_checks");
    let figures = study.figures();
    let evals = evaluate_all(&figures);
    obs.phase("cli:render_health");
    let health_text = obs.health.render_jsonl(seed, window_days);
    obs.prof_finish();
    let wall = clock.borrow_mut().finish();
    let doc = doc.ok_or("profile collected no telemetry (internal error)")?;
    let prof_doc =
        titan_obs::ProfDoc::build(obs.prof_ledger(), seed, window_days, doc.clone(), wall);

    println!("titan-repro profile — seed {seed}, {window_days} days");
    println!();
    println!("deterministic cost ledger (titan-prof/2; seed-deterministic):");
    println!(
        "  {:<28} {:>9} {:>9} {:>10} {:>8} {:>8} {:>11}",
        "scope", "dequeues", "pushes", "rng_draws", "trace", "console", "alloc_bytes"
    );
    for (name, c) in &prof_doc.ledger {
        println!(
            "  {name:<28} {:>9} {:>9} {:>10} {:>8} {:>8} {:>11}",
            c.dequeues, c.heap_pushes, c.rng_draws, c.trace_records, c.console_lines,
            c.alloc_bytes
        );
    }
    let t = &prof_doc.totals;
    println!(
        "  {:<28} {:>9} {:>9} {:>10} {:>8} {:>8} {:>11}",
        "totals", t.dequeues, t.heap_pushes, t.rng_draws, t.trace_records, t.console_lines,
        t.alloc_bytes
    );
    println!();
    println!("wall-clock attribution (this host; quarantined from digests):");
    for s in &prof_doc.wall.scopes {
        println!(
            "  {:<28} {:>10.3} ms  ({} switch{})",
            s.name,
            s.wall_ms,
            s.switches,
            if s.switches == 1 { "" } else { "es" }
        );
    }
    println!(
        "  {:<28} {:>10.3} ms  ({:.1}% attributed)",
        "total", prof_doc.wall.total_ms, prof_doc.wall.attributed_pct
    );
    println!();
    println!("sim-time telemetry (seed-deterministic; see OBSERVABILITY.md):");
    for (section, map) in [
        ("engine", &doc.engine),
        ("faults", &doc.faults),
        ("sec", &doc.sec),
        ("nvsmi", &doc.nvsmi),
    ] {
        println!("  [{section}]");
        for (name, value) in map {
            println!("    {name:<38} {value:>12}");
        }
    }
    println!("  [histograms]");
    for (name, h) in &doc.histograms {
        println!("    {name:<38} count {:>8}  sum {:>10}", h.count, h.sum);
    }
    println!("  [spans]");
    for (kind, count) in &doc.spans.by_kind {
        println!("    {kind:<38} {count:>12}");
    }
    println!(
        "    {:<38} {:>12}  (ring keeps {}, dropped {})",
        "recorded",
        doc.spans.recorded,
        doc.spans.recent.len(),
        doc.spans.dropped
    );
    let fails = evals.iter().filter(|e| e.verdict == Verdict::Fail).count();
    println!("  [health]");
    let hdoc = titan_obs::parse_health(&health_text)?;
    println!("    {:<38} {:>12}", "intervals", hdoc.header.intervals);
    println!("    {:<38} {:>12}", "alerts_fired", hdoc.header.alerts);
    println!();
    println!(
        "checks: {} evaluated, {fails} FAIL (run `titan-repro check` for detail)",
        evals.len()
    );
    if let Some(path) = &opts.metrics {
        write_text(path, &doc.to_json())?;
    }
    if let Some(path) = &opts.health {
        write_text(path, &health_text)?;
    }
    if let Some(path) = &opts.json {
        eprintln!(
            "note: `profile --json` now writes titan-prof/2; the titan-profile/1 \
             wall-clock phase table is retired (wall time lives on in the \
             quarantined `wall` section)"
        );
        write_text(path, &prof_doc.to_json())?;
    }
    if let Some(path) = &opts.flamegraph {
        write_text(path, &prof_doc.collapsed_stacks())?;
    }
    if let Some(path) = &opts.perfetto {
        write_text(path, &prof_doc.perfetto_counters())?;
    }
    Ok(ExitCode::SUCCESS)
}

/// The `trace` subcommand: verify / summarize / show over a
/// `titan-trace/1` JSONL file written by `run --trace` or
/// `replicate --trace`.
fn trace_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut mode: Option<String> = None;
    let mut file: Option<String> = None;
    let mut filter = titan_obs::TraceFilter::default();
    let mut chrome: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name}: `{v}` is not a non-negative integer"))
        };
        match arg.as_str() {
            "--card" => filter.card = Some(num("--card")?),
            "--node" => filter.node = Some(num("--node")?),
            "--job" => filter.apid = Some(num("--job")?),
            "--window" => {
                let v = it.next().ok_or("--window needs LO:HI (sim seconds)")?;
                let Some((lo, hi)) = v.split_once(':') else {
                    return Err(format!("--window: `{v}` is not LO:HI"));
                };
                let lo: u64 = lo
                    .parse()
                    .map_err(|_| format!("--window: `{lo}` is not a non-negative integer"))?;
                let hi: u64 = hi
                    .parse()
                    .map_err(|_| format!("--window: `{hi}` is not a non-negative integer"))?;
                if lo > hi {
                    return Err(format!("--window: {lo} > {hi}"));
                }
                filter.window = Some((lo, hi));
            }
            "--chrome" => {
                chrome = Some(it.next().ok_or("--chrome needs a file")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            word if mode.is_none() => mode = Some(word.to_string()),
            word if file.is_none() => file = Some(word.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let mode = mode.ok_or(format!("trace needs a mode\n{USAGE}"))?;
    let file = file.ok_or(format!("trace needs a FILE\n{USAGE}"))?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("read {file}: {e}"))?;
    let (header, records) = titan_obs::parse_trace(&text)?;
    match mode.as_str() {
        "verify" => {
            let report = titan_obs::verify_trace(&header, &records);
            println!(
                "{}: {} records, {} chains walked, max depth {}",
                file, report.records, report.chains_walked, report.max_depth
            );
            if report.ok() {
                println!("provenance OK: every alert and retirement walks back to a fault draft");
                Ok(ExitCode::SUCCESS)
            } else {
                for e in &report.errors {
                    println!("VIOLATION: {e}");
                }
                println!("{} provenance violation(s)", report.errors.len());
                Ok(ExitCode::FAILURE)
            }
        }
        "summarize" => {
            let kept: Vec<titan_obs::TraceRecord> = records
                .iter()
                .filter(|r| filter.matches(r))
                .cloned()
                .collect();
            print!("{}", titan_obs::summarize_trace(&header, &kept));
            Ok(ExitCode::SUCCESS)
        }
        "show" => {
            let kept: Vec<titan_obs::TraceRecord> = records
                .iter()
                .filter(|r| filter.matches(r))
                .cloned()
                .collect();
            if let Some(path) = chrome {
                write_text(&path, &titan_obs::chrome_trace(&kept))?;
            } else {
                for r in &kept {
                    println!(
                        "{}",
                        serde_json::to_string(r).map_err(|e| format!("serialize record: {e}"))?
                    );
                }
                eprintln!("{} of {} records matched", kept.len(), records.len());
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown trace mode `{other}`\n{USAGE}")),
    }
}

/// The `health` subcommand: summarize / watch / rules over a
/// `titan-health/1` JSONL file written by `run --health`,
/// `check --health`, or `replicate --health`.
fn health_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut mode: Option<String> = None;
    let mut file: Option<String> = None;
    let mut trace_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace_file = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            word if mode.is_none() => mode = Some(word.to_string()),
            word if file.is_none() => file = Some(word.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let mode = mode.ok_or(format!("health needs a mode\n{USAGE}"))?;
    if mode == "rules" {
        // `rules` takes no FILE: it prints the default alert-rule set,
        // the starting point for a hand-rolled rule JSON.
        if let Some(extra) = file {
            return Err(format!("health rules takes no FILE (got `{extra}`)"));
        }
        print!(
            "{}",
            titan_obs::rules_to_json(&titan_obs::olcf_default_rules())
        );
        return Ok(ExitCode::SUCCESS);
    }
    let file = file.ok_or(format!("health needs a FILE\n{USAGE}"))?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("read {file}: {e}"))?;
    let doc = titan_obs::parse_health(&text).map_err(|e| format!("{file}: {e}"))?;
    let walk = |doc: &titan_obs::HealthDoc| -> Result<(), String> {
        let Some(tf) = &trace_file else { return Ok(()) };
        let ttext = std::fs::read_to_string(tf).map_err(|e| format!("read {tf}: {e}"))?;
        let (_, records) = titan_obs::parse_trace(&ttext).map_err(|e| format!("{tf}: {e}"))?;
        let walked = titan_obs::verify_health_alerts(doc, &records)?;
        println!("provenance OK: {walked} alert(s) walk back to a causing fault draft");
        Ok(())
    };
    match mode.as_str() {
        "summarize" => {
            print!("{}", titan_obs::summarize_health(&doc));
            walk(&doc)?;
            Ok(ExitCode::SUCCESS)
        }
        "watch" => {
            print!("{}", titan_obs::watch_health(&doc));
            walk(&doc)?;
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown health mode `{other}`\n{USAGE}")),
    }
}

fn logs(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.metrics.is_some() || opts.json.is_some() || opts.trace.is_some()
        || opts.health.is_some() || opts.prof.is_some() || opts.flamegraph.is_some()
        || opts.perfetto.is_some() || opts.any_checkpoint_flag()
    {
        return Err("logs takes --days / --seed / --out only".into());
    }
    let out_dir = opts.out.clone().ok_or("logs requires --out DIR")?;
    let config = study_config(&opts)?;
    let sim = Simulator::new(config.sim)?;
    let output = sim.run();
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
    let write = |name: &str, text: String| -> Result<(), String> {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    write("console.log", output.render_console_log())?;
    write("job.log", output.render_job_log())?;
    write("aprun.log", output.render_aprun_log())?;
    Ok(ExitCode::SUCCESS)
}
