//! `titan-repro` — the command-line front end of the reproduction.
//!
//! ```text
//! titan-repro taxonomy                      Tables 1 & 2 (XID taxonomy)
//! titan-repro run   [--days N] [--seed S] [--metrics FILE]
//!                                           simulate and print the report
//! titan-repro check [--days N] [--seed S] [--metrics FILE] [--json FILE]
//!                                           evaluate paper-shape checks;
//!                                           exit 1 on any FAIL
//! titan-repro logs  [--days N] [--seed S] --out DIR
//!                                           write console/job/aprun logs
//! titan-repro replicate --seeds N [--threads T] [--days D] [--seed S]
//!                       [--skip-expectations] [--out FILE.json]
//!                       [--metrics FILE.json]
//!                                           run N seeds in parallel and
//!                                           report mean/95% CI bands
//! titan-repro profile [--days N] [--seed S] [--metrics FILE]
//!                                           run a window and print a
//!                                           per-phase wall-time and
//!                                           per-subsystem metric breakdown
//! ```
//!
//! Without `--days` the full Jun'13–Feb'15 window runs (about two
//! minutes in release). Everything is seed-deterministic: the same
//! seed and window produce byte-identical output.
//!
//! Time domains: the metrics documents written by `--metrics` carry
//! sim-time quantities only and are byte-identical across thread
//! widths; wall-clock timing appears exclusively in `profile` output
//! (this binary is outside the engine, so `std::time` is allowed here —
//! see OBSERVABILITY.md and lint rule D5).

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;
use std::time::{Duration, Instant};

use titan_gpu_reliability::gpu::{ErrorCategory, GpuErrorKind};
use titan_gpu_reliability::sim::Simulator;
use titan_gpu_reliability::{evaluate_all, full_report, Study, StudyConfig, Verdict};
use titan_obs::Obs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "taxonomy" => taxonomy(&args[1..]),
        "run" => run(&args[1..]),
        "check" => check(&args[1..]),
        "logs" => logs(&args[1..]),
        "replicate" => replicate(&args[1..]),
        "profile" => profile(&args[1..]),
        "trace" => trace_cmd(&args[1..]),
        // lint: allow(P2, first() returned Some above, so index 1.. is in bounds)
        "health" => health_cmd(&args[1..]),
        "ckpt" => ckpt_cmd(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: titan-repro <command> [options]

commands:
  taxonomy                          print Tables 1 & 2 (the XID taxonomy)
  run   [--days N] [--seed S] [--metrics FILE] [--trace FILE] [--health FILE]
        [--span-capacity N]
        [--checkpoint-every SECS --ckpt-dir DIR] [--from-checkpoint FILE]
                                    simulate and print the full report;
                                    --metrics writes the sim-time telemetry
                                    document (stable JSON, seed-deterministic);
                                    --trace writes the titan-trace/1 causal
                                    flight-recorder JSONL;
                                    --health writes the titan-health/1 online
                                    reliability-analytics JSONL (rolling MTBF,
                                    spatial heat, top offenders, fired alerts);
                                    --checkpoint-every freezes the full machine
                                    state into DIR/ckpt-NNNNNN.json (titan-ckpt/1,
                                    hash-chained) every SECS sim seconds;
                                    --from-checkpoint resumes one and reproduces
                                    the run-through output byte for byte (use the
                                    same --metrics/--trace/--health flags as the
                                    original)
  check [--days N] [--seed S] [--metrics FILE] [--json FILE] [--health FILE]
        [--span-capacity N]
                                    run the paper-shape checks; exit 1 on FAIL;
                                    --json writes per-check verdicts as JSON
  logs  [--days N] [--seed S] --out DIR
                                    write console.log / job.log / aprun.log
  replicate --seeds N [--threads T] [--days D] [--seed S]
            [--skip-expectations] [--out FILE.json] [--metrics FILE.json]
            [--trace DIR] [--health DIR]
                                    run N independent seeds across T threads
                                    (default: all cores) and report mean/95% CI
                                    bands; per-seed output is byte-identical
                                    to a sequential run of the same seed;
                                    --metrics writes per-seed telemetry
                                    documents plus aggregate metric bands;
                                    --trace writes DIR/trace-seed-<seed>.jsonl
                                    per seed; --health writes
                                    DIR/health-seed-<seed>.jsonl per seed
  profile [--days N] [--seed S] [--metrics FILE] [--json FILE] [--health FILE]
          [--span-capacity N]
                                    run one window with telemetry enabled and
                                    print a per-phase wall-time table plus a
                                    per-subsystem sim-metrics breakdown;
                                    --json writes the titan-profile/1 document
                                    (health collection is on, so its phases
                                    include the cli:render_health cost)
  health <summarize|watch|rules> FILE [--trace TRACEFILE]
                                    inspect a titan-health/1 JSONL: summarize
                                    prints the end-of-run fleet summary; watch
                                    replays the interval stream as deterministic
                                    heatmap frames; rules prints the default
                                    alert-rule set as JSON; --trace additionally
                                    walks every fired alert back to its causing
                                    fault draft in the given titan-trace/1 file
                                    (exit 1 on a provenance hole)
  trace <verify|summarize|show> FILE
        [--card N] [--node N] [--job APID] [--window LO:HI] [--chrome FILE]
                                    inspect a titan-trace/1 JSONL: verify walks
                                    every alert/retirement back to an injected
                                    fault draft (exit 1 on provenance holes);
                                    summarize prints per-kind counts; show
                                    prints matching records; --chrome exports
                                    Chrome trace events (open in Perfetto)
  ckpt <verify|bisect> ...
                                    verify FILE: recompute a checkpoint's chained
                                    digest and report its provenance;
                                    bisect DIR_A DIR_B: compare two runs'
                                    checkpoint chains and report the first
                                    interval whose chained digest diverges

Without --days the full 21-month study window runs (~2 min in release).";

/// Parsed common options.
struct Opts {
    days: Option<u64>,
    seed: Option<u64>,
    out: Option<String>,
    metrics: Option<String>,
    json: Option<String>,
    trace: Option<String>,
    health: Option<String>,
    span_capacity: Option<usize>,
    checkpoint_every: Option<u64>,
    ckpt_dir: Option<String>,
    from_checkpoint: Option<String>,
    inject_divergence: Option<u64>,
}

impl Opts {
    /// True when any checkpoint/restore flag was given (only `run`
    /// accepts them).
    fn any_checkpoint_flag(&self) -> bool {
        self.checkpoint_every.is_some()
            || self.ckpt_dir.is_some()
            || self.from_checkpoint.is_some()
            || self.inject_divergence.is_some()
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        days: None,
        seed: None,
        out: None,
        metrics: None,
        json: None,
        trace: None,
        health: None,
        span_capacity: None,
        checkpoint_every: None,
        ckpt_dir: None,
        from_checkpoint: None,
        inject_divergence: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                opts.days = Some(
                    v.parse()
                        .map_err(|_| format!("--days: `{v}` is not a non-negative integer"))?,
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: `{v}` is not a non-negative integer"))?,
                );
            }
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file")?.clone());
            }
            "--json" => {
                opts.json = Some(it.next().ok_or("--json needs a file")?.clone());
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--health" => {
                opts.health = Some(it.next().ok_or("--health needs a file")?.clone());
            }
            "--span-capacity" => {
                let v = it.next().ok_or("--span-capacity needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--span-capacity: `{v}` is not a positive integer"))?;
                if n == 0 {
                    return Err("--span-capacity must be at least 1".into());
                }
                opts.span_capacity = Some(n);
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs sim seconds")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--checkpoint-every: `{v}` is not a positive integer"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1 sim second".into());
                }
                opts.checkpoint_every = Some(n);
            }
            "--ckpt-dir" => {
                opts.ckpt_dir = Some(it.next().ok_or("--ckpt-dir needs a directory")?.clone());
            }
            "--from-checkpoint" => {
                opts.from_checkpoint =
                    Some(it.next().ok_or("--from-checkpoint needs a file")?.clone());
            }
            "--inject-divergence" => {
                let v = it.next().ok_or("--inject-divergence needs sim seconds")?;
                opts.inject_divergence = Some(v.parse().map_err(|_| {
                    format!("--inject-divergence: `{v}` is not a non-negative integer")
                })?);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Builds a validated study config from the common options.
fn study_config(opts: &Opts) -> Result<StudyConfig, String> {
    let mut config = match opts.days {
        Some(days) => StudyConfig::quick(days, opts.seed.unwrap_or(0x7174_414E)),
        None => StudyConfig::default(),
    };
    if let Some(seed) = opts.seed {
        config.sim.seed = seed;
    }
    config
        .sim
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(config)
}

fn write_text(path: &str, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Runs a study, collecting telemetry only when the sink is enabled
/// (`--metrics`, or always under `profile`). Collection never perturbs
/// the run — the digest-equality tests in `titan-runner` pin that — so
/// the printed report is identical either way.
fn run_study(
    config: StudyConfig,
    obs: &mut Obs,
) -> (
    titan_gpu_reliability::study::CompletedStudy,
    Option<titan_runner::MetricsDoc>,
) {
    let seed = config.sim.seed;
    let window = config.sim.window;
    let study = Study::new(config).run_with_obs(obs);
    // Collection also runs for a trace-only capture: the SEC replay and
    // nvsmi rollup it performs mint the collect-time trace records.
    let doc = if obs.is_enabled() || obs.trace_enabled() {
        obs.phase("cli:collect_metrics");
        let doc = titan_runner::collect_metrics(&study.sim, seed, window, obs);
        obs.is_enabled().then_some(doc)
    } else {
        None
    };
    (study, doc)
}

/// Builds the CLI's observability sink from the common options.
fn build_obs(opts: &Opts, metrics_on: bool) -> Obs {
    let mut obs = match opts.span_capacity {
        Some(cap) => Obs::with_span_capacity(metrics_on, cap),
        None => Obs::new(metrics_on),
    };
    if opts.trace.is_some() {
        obs.enable_trace();
    }
    if opts.health.is_some() {
        obs.enable_health();
    }
    obs
}

fn taxonomy(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("taxonomy takes no options\n{USAGE}"));
    }
    println!("Table 1 — hardware (and ambiguous) GPU errors:");
    for k in GpuErrorKind::ALL {
        if matches!(
            k.category(),
            ErrorCategory::Hardware | ErrorCategory::Ambiguous
        ) {
            print_kind(k);
        }
    }
    println!();
    println!("Table 2 — software/firmware (and ambiguous) GPU errors:");
    for k in GpuErrorKind::ALL {
        if matches!(
            k.category(),
            ErrorCategory::SoftwareFirmware | ErrorCategory::Ambiguous
        ) {
            print_kind(k);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn print_kind(k: GpuErrorKind) {
    let xid = match k.xid() {
        Some(x) => format!("XID {:>3}", x.0),
        None => "no XID ".to_string(),
    };
    println!("  {xid}  {}", k.description());
}

/// Builds the `--ckpt-dir` writer: each sealed checkpoint document goes
/// to `DIR/ckpt-<index>.json` the moment its boundary is reached.
/// Progress chatter goes to **stderr** so stdout stays byte-comparable
/// between checkpointed, plain, and resumed runs.
fn checkpoint_sink(
    dir: Option<String>,
) -> Result<impl FnMut(&titan_runner::CheckpointDoc) -> Result<(), String>, String> {
    if let Some(d) = &dir {
        std::fs::create_dir_all(d).map_err(|e| format!("create {d}: {e}"))?;
    }
    Ok(move |doc: &titan_runner::CheckpointDoc| {
        let Some(d) = &dir else { return Ok(()) };
        let path = format!("{d}/ckpt-{:06}.json", doc.index);
        std::fs::write(&path, titan_runner::render_checkpoint(doc))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "checkpoint {:>3}  t = {:>10} s  digest {:016x}  -> {path}",
            doc.index, doc.t, doc.digest
        );
        Ok(())
    })
}

/// The shared tail of every `run` variant: collect telemetry, print the
/// report, write the artifacts. Identical on the straight-through,
/// checkpointing, and resumed paths — that is what makes their stdout,
/// metrics, and trace byte-comparable.
fn finish_run(
    study: &titan_gpu_reliability::study::CompletedStudy,
    obs: &mut Obs,
    opts: &Opts,
    seed: u64,
    window: u64,
) -> Result<ExitCode, String> {
    let doc = if obs.is_enabled() || obs.trace_enabled() {
        obs.phase("cli:collect_metrics");
        let doc = titan_runner::collect_metrics(&study.sim, seed, window, obs);
        obs.is_enabled().then_some(doc)
    } else {
        None
    };
    println!("{}", full_report(study));
    if let (Some(path), Some(doc)) = (&opts.metrics, &doc) {
        write_text(path, &doc.to_json())?;
    }
    if let Some(path) = &opts.trace {
        write_text(path, &obs.stream.render_jsonl(seed, window / 86_400))?;
    }
    if let Some(path) = &opts.health {
        write_text(path, &obs.health.render_jsonl(seed, window / 86_400))?;
    }
    Ok(ExitCode::SUCCESS)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.json.is_some() {
        return Err("--json applies to `check` and `profile` only".into());
    }
    if opts.checkpoint_every.is_some() != opts.ckpt_dir.is_some() {
        return Err("--checkpoint-every and --ckpt-dir must be given together".into());
    }
    if opts.inject_divergence.is_some()
        && opts.checkpoint_every.is_none()
        && opts.from_checkpoint.is_none()
    {
        return Err(
            "--inject-divergence is for validating `ckpt bisect`; combine it with \
             --checkpoint-every or --from-checkpoint"
                .into(),
        );
    }
    let every = opts.checkpoint_every.unwrap_or(0);

    // Resume: the checkpoint carries the full configuration.
    if let Some(path) = &opts.from_checkpoint {
        if opts.days.is_some() || opts.seed.is_some() {
            return Err(
                "--from-checkpoint carries its own configuration; drop --days/--seed".into(),
            );
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let ck = titan_runner::parse_checkpoint(&text)?;
        // Health state rides the ObsSnapshot: a flag mismatch cannot be
        // papered over (the resumed doc would silently restart from an
        // empty sink), so reject it up front instead of diverging.
        if ck.obs.health_enabled() != opts.health.is_some() {
            return Err(if opts.health.is_some() {
                format!(
                    "--from-checkpoint {path}: the checkpoint was written without --health; \
                     resume with the same flags as the original run"
                )
            } else {
                format!(
                    "--from-checkpoint {path}: the checkpoint was written with --health; \
                     pass --health FILE to resume it"
                )
            });
        }
        let seed = ck.seed;
        let window = ck.config.sim.window;
        eprintln!(
            "resuming from checkpoint {} (t = {} s, digest {:016x})",
            ck.index, ck.t, ck.digest
        );
        let mut obs = build_obs(&opts, opts.metrics.is_some());
        let sink = checkpoint_sink(opts.ckpt_dir.clone())?;
        let study =
            titan_runner::resume_checkpointed(&ck, every, opts.inject_divergence, &mut obs, sink)?;
        return finish_run(&study, &mut obs, &opts, seed, window);
    }

    let config = study_config(&opts)?;
    let seed = config.sim.seed;
    let window = config.sim.window;
    let mut obs = build_obs(&opts, opts.metrics.is_some());

    // Checkpointing run: the runner drives the engine in boundary-sized
    // steps; output is byte-identical to the plain path below.
    if every > 0 {
        let sink = checkpoint_sink(opts.ckpt_dir.clone())?;
        let study =
            titan_runner::run_checkpointed(&config, every, opts.inject_divergence, &mut obs, sink)?;
        return finish_run(&study, &mut obs, &opts, seed, window);
    }

    let study = Study::new(config).run_with_obs(&mut obs);
    finish_run(&study, &mut obs, &opts, seed, window)
}

/// The `ckpt` subcommand: offline tooling over `titan-ckpt/1` files.
fn ckpt_cmd(args: &[String]) -> Result<ExitCode, String> {
    let Some(mode) = args.first() else {
        return Err(format!("ckpt needs a mode (verify | bisect)\n{USAGE}"));
    };
    match mode.as_str() {
        "verify" => {
            let [_, file] = args else {
                return Err("usage: ckpt verify FILE".into());
            };
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
            let doc = titan_runner::parse_checkpoint(&text)?;
            println!(
                "{file}: checkpoint {} of seed {} ({} days), t = {} s, digest {:016x} \
                 (chained over {:016x}) — digest OK",
                doc.index, doc.seed, doc.window_days, doc.t, doc.digest, doc.prev_digest
            );
            Ok(ExitCode::SUCCESS)
        }
        "bisect" => {
            let [_, dir_a, dir_b] = args else {
                return Err("usage: ckpt bisect DIR_A DIR_B".into());
            };
            let a = load_checkpoint_chain(dir_a)?;
            let b = load_checkpoint_chain(dir_b)?;
            println!(
                "run A: {} checkpoints ({dir_a}), run B: {} checkpoints ({dir_b})",
                a.len(),
                b.len()
            );
            let report = titan_runner::bisect(&a, &b)?;
            match report.divergence {
                Some(d) => {
                    println!(
                        "first divergence at checkpoint {}: the runs diverged in \
                         ({} s, {} s] — chained digests agree through t = {} s",
                        d.index, d.t_lo, d.t_hi, d.t_lo
                    );
                }
                None => {
                    println!(
                        "chains agree through all {} compared checkpoints — no divergence",
                        report.compared
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown ckpt mode `{other}`\n{USAGE}")),
    }
}

/// Loads every `ckpt-*.json` in `dir`, digest-verifying each, sorted by
/// checkpoint index.
fn load_checkpoint_chain(dir: &str) -> Result<Vec<titan_runner::CheckpointDoc>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("{dir}: no ckpt-*.json checkpoint files"));
    }
    let mut docs = Vec::new();
    for name in names {
        let path = format!("{dir}/{name}");
        let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        docs.push(titan_runner::parse_checkpoint(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    docs.sort_by_key(|d| d.index);
    Ok(docs)
}

/// One line of the `check --json` document.
#[derive(serde::Serialize)]
struct CheckVerdict {
    id: String,
    verdict: String,
    paper: String,
    measured: String,
}

/// The `check --json` document: machine-readable per-check verdicts.
#[derive(serde::Serialize)]
struct CheckDoc {
    schema: String,
    seed: u64,
    window_days: u64,
    pass: u32,
    weak: u32,
    fail: u32,
    checks: Vec<CheckVerdict>,
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.trace.is_some() {
        return Err("--trace applies to `run` and `replicate` only".into());
    }
    if opts.any_checkpoint_flag() {
        return Err("checkpoint flags apply to `run` only".into());
    }
    let config = study_config(&opts)?;
    let seed = config.sim.seed;
    let window_days = config.sim.window / 86_400;
    let mut obs = build_obs(&opts, opts.metrics.is_some());
    let (study, doc) = run_study(config, &mut obs);
    let figures = study.figures();
    let (mut pass, mut weak, mut fail) = (0u32, 0u32, 0u32);
    let mut checks = Vec::new();
    for e in evaluate_all(&figures) {
        println!("[{}] {:<6} {}", e.verdict, e.id, e.measured);
        match e.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Weak => weak += 1,
            Verdict::Fail => fail += 1,
        }
        checks.push(CheckVerdict {
            id: e.id,
            verdict: e.verdict.to_string(),
            paper: e.paper,
            measured: e.measured,
        });
    }
    println!("{pass} PASS / {weak} WEAK / {fail} FAIL");
    if let Some(path) = &opts.json {
        let doc = CheckDoc {
            schema: "titan-check/1".to_string(),
            seed,
            window_days,
            pass,
            weak,
            fail,
            checks,
        };
        let mut json = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("serialize checks: {e}"))?;
        json.push('\n');
        write_text(path, &json)?;
    }
    if let (Some(path), Some(doc)) = (&opts.metrics, &doc) {
        write_text(path, &doc.to_json())?;
    }
    if let Some(path) = &opts.health {
        write_text(path, &obs.health.render_jsonl(seed, window_days))?;
    }
    if fail > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn replicate(args: &[String]) -> Result<ExitCode, String> {
    let mut days: Option<u64> = None;
    let mut base_seed: u64 = 0x7174_414E;
    let mut seeds: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut health_dir: Option<String> = None;
    let mut skip_expectations = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name}: `{v}` is not a non-negative integer"))
        };
        match flag.as_str() {
            "--days" => days = Some(num("--days")?),
            "--seed" => base_seed = num("--seed")?,
            "--seeds" => seeds = Some(num("--seeds")?),
            "--threads" => threads = Some(num("--threads")? as usize),
            "--skip-expectations" => skip_expectations = true,
            "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
            "--metrics" => {
                metrics = Some(it.next().ok_or("--metrics needs a file")?.clone());
            }
            "--trace" => {
                trace_dir = Some(it.next().ok_or("--trace needs a directory")?.clone());
            }
            "--health" => {
                health_dir = Some(it.next().ok_or("--health needs a directory")?.clone());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let n = seeds.ok_or("replicate requires --seeds N")?;
    if n == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let base = match days {
        Some(d) => StudyConfig::quick(d, base_seed),
        None => {
            let mut c = StudyConfig::default();
            c.sim.seed = base_seed;
            c
        }
    };
    let threads = threads.unwrap_or_else(titan_runner::recommended_threads);
    let mut opts = titan_runner::ReplicateOptions::consecutive(base, base_seed, n, threads)?;
    opts.skip_expectations = skip_expectations;
    opts.collect_obs = metrics.is_some();
    opts.collect_trace = trace_dir.is_some();
    opts.collect_health = health_dir.is_some();
    let (report, traces, healths) = titan_runner::replicate_full(&opts)?;
    print!("{}", titan_runner::render_report(&report));
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
        for (run, trace) in report.runs.iter().zip(&traces) {
            let Some(text) = trace else {
                return Err("replicate produced no trace (internal error)".into());
            };
            write_text(&format!("{dir}/trace-seed-{}.jsonl", run.seed), text)?;
        }
    }
    if let Some(dir) = health_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
        for (run, health) in report.runs.iter().zip(&healths) {
            let Some(text) = health else {
                return Err("replicate produced no health doc (internal error)".into());
            };
            write_text(&format!("{dir}/health-seed-{}.jsonl", run.seed), text)?;
        }
    }
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = metrics {
        let doc = titan_runner::obs_replicate_doc(&report)
            .ok_or("replicate produced no telemetry (internal error)")?;
        write_text(&path, &titan_runner::render_obs_metrics_json(&doc))?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Wall-clock phase ledger the profiler's hook writes into. This is the
/// only place in the workspace where phase markers meet `Instant`: the
/// engine emits pure `&'static str` markers, and this CLI timestamps
/// them on arrival (lint rule D5 keeps it that way).
struct PhaseClock {
    started: Instant,
    current: Option<(&'static str, Instant)>,
    done: Vec<(&'static str, Duration)>,
}

impl PhaseClock {
    fn new() -> Self {
        PhaseClock {
            started: Instant::now(),
            current: None,
            done: Vec::new(),
        }
    }

    fn mark(&mut self, name: &'static str) {
        let now = Instant::now();
        if let Some((prev, t0)) = self.current.take() {
            self.done.push((prev, now.duration_since(t0)));
        }
        self.current = Some((name, now));
    }

    fn finish(&mut self) -> Duration {
        self.mark("cli:done");
        self.current = None;
        self.started.elapsed()
    }
}

/// One phase row of the `profile --json` document. Wall-clock numbers
/// are host-dependent by nature: the *shape* of the document is frozen
/// (lint S1), the millisecond values are not expected to replicate.
#[derive(serde::Serialize)]
struct ProfilePhase {
    name: String,
    wall_ms: f64,
}

/// The `profile --json` document.
#[derive(serde::Serialize)]
struct ProfileDoc {
    schema: String,
    seed: u64,
    window_days: u64,
    phases: Vec<ProfilePhase>,
    metrics: titan_runner::MetricsDoc,
}

fn profile(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.out.is_some() || opts.trace.is_some() || opts.any_checkpoint_flag() {
        return Err("profile takes --days / --seed / --metrics / --json / --health only".into());
    }
    let config = study_config(&opts)?;
    let seed = config.sim.seed;
    let window_days = config.sim.window / 86_400;

    let clock = Rc::new(RefCell::new(PhaseClock::new()));
    let mut obs = build_obs(&opts, true);
    // Health collection is always on under `profile`, so the phase table
    // (and the titan-profile/1 document) exposes what the online
    // analytics layer costs on top of the metrics sink.
    obs.enable_health();
    let hook_clock = Rc::clone(&clock);
    obs.set_phase_hook(Box::new(move |name| hook_clock.borrow_mut().mark(name)));

    let (study, doc) = run_study(config, &mut obs);
    obs.phase("cli:figures_checks");
    let figures = study.figures();
    let evals = evaluate_all(&figures);
    obs.phase("cli:render_health");
    let health_text = obs.health.render_jsonl(seed, window_days);
    let total = clock.borrow_mut().finish();
    let doc = doc.ok_or("profile collected no telemetry (internal error)")?;

    println!("titan-repro profile — seed {seed}, {window_days} days");
    println!();
    println!("phase breakdown (wall clock, this host):");
    for (name, dur) in &clock.borrow().done {
        println!("  {name:<28} {:>10.3} ms", dur.as_secs_f64() * 1e3);
    }
    println!("  {:<28} {:>10.3} ms", "total", total.as_secs_f64() * 1e3);
    println!();
    println!("sim-time telemetry (seed-deterministic; see OBSERVABILITY.md):");
    for (section, map) in [
        ("engine", &doc.engine),
        ("faults", &doc.faults),
        ("sec", &doc.sec),
        ("nvsmi", &doc.nvsmi),
    ] {
        println!("  [{section}]");
        for (name, value) in map {
            println!("    {name:<38} {value:>12}");
        }
    }
    println!("  [histograms]");
    for (name, h) in &doc.histograms {
        println!("    {name:<38} count {:>8}  sum {:>10}", h.count, h.sum);
    }
    println!("  [spans]");
    for (kind, count) in &doc.spans.by_kind {
        println!("    {kind:<38} {count:>12}");
    }
    println!(
        "    {:<38} {:>12}  (ring keeps {}, dropped {})",
        "recorded",
        doc.spans.recorded,
        doc.spans.recent.len(),
        doc.spans.dropped
    );
    let fails = evals.iter().filter(|e| e.verdict == Verdict::Fail).count();
    println!("  [health]");
    let hdoc = titan_obs::parse_health(&health_text)?;
    println!("    {:<38} {:>12}", "intervals", hdoc.header.intervals);
    println!("    {:<38} {:>12}", "alerts_fired", hdoc.header.alerts);
    println!();
    println!(
        "checks: {} evaluated, {fails} FAIL (run `titan-repro check` for detail)",
        evals.len()
    );
    if let Some(path) = &opts.metrics {
        write_text(path, &doc.to_json())?;
    }
    if let Some(path) = &opts.health {
        write_text(path, &health_text)?;
    }
    if let Some(path) = &opts.json {
        let profile_doc = ProfileDoc {
            schema: "titan-profile/1".to_string(),
            seed,
            window_days,
            phases: clock
                .borrow()
                .done
                .iter()
                .map(|(name, dur)| ProfilePhase {
                    name: (*name).to_string(),
                    wall_ms: dur.as_secs_f64() * 1e3,
                })
                .collect(),
            metrics: doc,
        };
        let mut json = serde_json::to_string_pretty(&profile_doc)
            .map_err(|e| format!("serialize profile: {e}"))?;
        json.push('\n');
        write_text(path, &json)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// The `trace` subcommand: verify / summarize / show over a
/// `titan-trace/1` JSONL file written by `run --trace` or
/// `replicate --trace`.
fn trace_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut mode: Option<String> = None;
    let mut file: Option<String> = None;
    let mut filter = titan_obs::TraceFilter::default();
    let mut chrome: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name}: `{v}` is not a non-negative integer"))
        };
        match arg.as_str() {
            "--card" => filter.card = Some(num("--card")?),
            "--node" => filter.node = Some(num("--node")?),
            "--job" => filter.apid = Some(num("--job")?),
            "--window" => {
                let v = it.next().ok_or("--window needs LO:HI (sim seconds)")?;
                let Some((lo, hi)) = v.split_once(':') else {
                    return Err(format!("--window: `{v}` is not LO:HI"));
                };
                let lo: u64 = lo
                    .parse()
                    .map_err(|_| format!("--window: `{lo}` is not a non-negative integer"))?;
                let hi: u64 = hi
                    .parse()
                    .map_err(|_| format!("--window: `{hi}` is not a non-negative integer"))?;
                if lo > hi {
                    return Err(format!("--window: {lo} > {hi}"));
                }
                filter.window = Some((lo, hi));
            }
            "--chrome" => {
                chrome = Some(it.next().ok_or("--chrome needs a file")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            word if mode.is_none() => mode = Some(word.to_string()),
            word if file.is_none() => file = Some(word.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let mode = mode.ok_or(format!("trace needs a mode\n{USAGE}"))?;
    let file = file.ok_or(format!("trace needs a FILE\n{USAGE}"))?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("read {file}: {e}"))?;
    let (header, records) = titan_obs::parse_trace(&text)?;
    match mode.as_str() {
        "verify" => {
            let report = titan_obs::verify_trace(&header, &records);
            println!(
                "{}: {} records, {} chains walked, max depth {}",
                file, report.records, report.chains_walked, report.max_depth
            );
            if report.ok() {
                println!("provenance OK: every alert and retirement walks back to a fault draft");
                Ok(ExitCode::SUCCESS)
            } else {
                for e in &report.errors {
                    println!("VIOLATION: {e}");
                }
                println!("{} provenance violation(s)", report.errors.len());
                Ok(ExitCode::FAILURE)
            }
        }
        "summarize" => {
            let kept: Vec<titan_obs::TraceRecord> = records
                .iter()
                .filter(|r| filter.matches(r))
                .cloned()
                .collect();
            print!("{}", titan_obs::summarize_trace(&header, &kept));
            Ok(ExitCode::SUCCESS)
        }
        "show" => {
            let kept: Vec<titan_obs::TraceRecord> = records
                .iter()
                .filter(|r| filter.matches(r))
                .cloned()
                .collect();
            if let Some(path) = chrome {
                write_text(&path, &titan_obs::chrome_trace(&kept))?;
            } else {
                for r in &kept {
                    println!(
                        "{}",
                        serde_json::to_string(r).map_err(|e| format!("serialize record: {e}"))?
                    );
                }
                eprintln!("{} of {} records matched", kept.len(), records.len());
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown trace mode `{other}`\n{USAGE}")),
    }
}

/// The `health` subcommand: summarize / watch / rules over a
/// `titan-health/1` JSONL file written by `run --health`,
/// `check --health`, or `replicate --health`.
fn health_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut mode: Option<String> = None;
    let mut file: Option<String> = None;
    let mut trace_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                trace_file = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            word if mode.is_none() => mode = Some(word.to_string()),
            word if file.is_none() => file = Some(word.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let mode = mode.ok_or(format!("health needs a mode\n{USAGE}"))?;
    if mode == "rules" {
        // `rules` takes no FILE: it prints the default alert-rule set,
        // the starting point for a hand-rolled rule JSON.
        if let Some(extra) = file {
            return Err(format!("health rules takes no FILE (got `{extra}`)"));
        }
        print!(
            "{}",
            titan_obs::rules_to_json(&titan_obs::olcf_default_rules())
        );
        return Ok(ExitCode::SUCCESS);
    }
    let file = file.ok_or(format!("health needs a FILE\n{USAGE}"))?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("read {file}: {e}"))?;
    let doc = titan_obs::parse_health(&text).map_err(|e| format!("{file}: {e}"))?;
    let walk = |doc: &titan_obs::HealthDoc| -> Result<(), String> {
        let Some(tf) = &trace_file else { return Ok(()) };
        let ttext = std::fs::read_to_string(tf).map_err(|e| format!("read {tf}: {e}"))?;
        let (_, records) = titan_obs::parse_trace(&ttext).map_err(|e| format!("{tf}: {e}"))?;
        let walked = titan_obs::verify_health_alerts(doc, &records)?;
        println!("provenance OK: {walked} alert(s) walk back to a causing fault draft");
        Ok(())
    };
    match mode.as_str() {
        "summarize" => {
            print!("{}", titan_obs::summarize_health(&doc));
            walk(&doc)?;
            Ok(ExitCode::SUCCESS)
        }
        "watch" => {
            print!("{}", titan_obs::watch_health(&doc));
            walk(&doc)?;
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown health mode `{other}`\n{USAGE}")),
    }
}

fn logs(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    if opts.metrics.is_some() || opts.json.is_some() || opts.trace.is_some()
        || opts.health.is_some() || opts.any_checkpoint_flag()
    {
        return Err("logs takes --days / --seed / --out only".into());
    }
    let out_dir = opts.out.clone().ok_or("logs requires --out DIR")?;
    let config = study_config(&opts)?;
    let sim = Simulator::new(config.sim)?;
    let output = sim.run();
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
    let write = |name: &str, text: String| -> Result<(), String> {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    write("console.log", output.render_console_log())?;
    write("job.log", output.render_job_log())?;
    write("aprun.log", output.render_aprun_log())?;
    Ok(ExitCode::SUCCESS)
}
