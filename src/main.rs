//! `titan-repro` — the command-line front end of the reproduction.
//!
//! ```text
//! titan-repro taxonomy                      Tables 1 & 2 (XID taxonomy)
//! titan-repro run   [--days N] [--seed S]   simulate and print the report
//! titan-repro check [--days N] [--seed S]   evaluate paper-shape checks;
//!                                           exit 1 on any FAIL
//! titan-repro logs  [--days N] [--seed S] --out DIR
//!                                           write console/job/aprun logs
//! titan-repro replicate --seeds N [--threads T] [--days D] [--seed S]
//!                       [--skip-expectations] [--out FILE.json]
//!                                           run N seeds in parallel and
//!                                           report mean/95% CI bands
//! ```
//!
//! Without `--days` the full Jun'13–Feb'15 window runs (about two
//! minutes in release). Everything is seed-deterministic: the same
//! seed and window produce byte-identical output.

use std::process::ExitCode;

use titan_gpu_reliability::gpu::{ErrorCategory, GpuErrorKind};
use titan_gpu_reliability::sim::Simulator;
use titan_gpu_reliability::{evaluate_all, full_report, Study, StudyConfig, Verdict};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "taxonomy" => taxonomy(&args[1..]),
        "run" => run(&args[1..]),
        "check" => check(&args[1..]),
        "logs" => logs(&args[1..]),
        "replicate" => replicate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: titan-repro <command> [options]

commands:
  taxonomy                          print Tables 1 & 2 (the XID taxonomy)
  run   [--days N] [--seed S]       simulate and print the full report
  check [--days N] [--seed S]       run the paper-shape checks; exit 1 on FAIL
  logs  [--days N] [--seed S] --out DIR
                                    write console.log / job.log / aprun.log
  replicate --seeds N [--threads T] [--days D] [--seed S]
            [--skip-expectations] [--out FILE.json]
                                    run N independent seeds across T threads
                                    (default: all cores) and report mean/95% CI
                                    bands; per-seed output is byte-identical
                                    to a sequential run of the same seed

Without --days the full 21-month study window runs (~2 min in release).";

/// Parsed common options.
struct Opts {
    days: Option<u64>,
    seed: Option<u64>,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        days: None,
        seed: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--days" => {
                let v = it.next().ok_or("--days needs a value")?;
                opts.days = Some(
                    v.parse()
                        .map_err(|_| format!("--days: `{v}` is not a non-negative integer"))?,
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: `{v}` is not a non-negative integer"))?,
                );
            }
            "--out" => {
                opts.out = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Builds a validated study config from the common options.
fn study_config(opts: &Opts) -> Result<StudyConfig, String> {
    let mut config = match opts.days {
        Some(days) => StudyConfig::quick(days, opts.seed.unwrap_or(0x7174_414E)),
        None => StudyConfig::default(),
    };
    if let Some(seed) = opts.seed {
        config.sim.seed = seed;
    }
    config
        .sim
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(config)
}

fn taxonomy(args: &[String]) -> Result<ExitCode, String> {
    if !args.is_empty() {
        return Err(format!("taxonomy takes no options\n{USAGE}"));
    }
    println!("Table 1 — hardware (and ambiguous) GPU errors:");
    for k in GpuErrorKind::ALL {
        if matches!(
            k.category(),
            ErrorCategory::Hardware | ErrorCategory::Ambiguous
        ) {
            print_kind(k);
        }
    }
    println!();
    println!("Table 2 — software/firmware (and ambiguous) GPU errors:");
    for k in GpuErrorKind::ALL {
        if matches!(
            k.category(),
            ErrorCategory::SoftwareFirmware | ErrorCategory::Ambiguous
        ) {
            print_kind(k);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn print_kind(k: GpuErrorKind) {
    let xid = match k.xid() {
        Some(x) => format!("XID {:>3}", x.0),
        None => "no XID ".to_string(),
    };
    println!("  {xid}  {}", k.description());
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let config = study_config(&opts)?;
    let study = Study::new(config).run();
    println!("{}", full_report(&study));
    Ok(ExitCode::SUCCESS)
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let config = study_config(&opts)?;
    let study = Study::new(config).run();
    let figures = study.figures();
    let (mut pass, mut weak, mut fail) = (0u32, 0u32, 0u32);
    for e in evaluate_all(&figures) {
        println!("[{}] {:<6} {}", e.verdict, e.id, e.measured);
        match e.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Weak => weak += 1,
            Verdict::Fail => fail += 1,
        }
    }
    println!("{pass} PASS / {weak} WEAK / {fail} FAIL");
    if fail > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn replicate(args: &[String]) -> Result<ExitCode, String> {
    let mut days: Option<u64> = None;
    let mut base_seed: u64 = 0x7174_414E;
    let mut seeds: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut skip_expectations = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name}: `{v}` is not a non-negative integer"))
        };
        match flag.as_str() {
            "--days" => days = Some(num("--days")?),
            "--seed" => base_seed = num("--seed")?,
            "--seeds" => seeds = Some(num("--seeds")?),
            "--threads" => threads = Some(num("--threads")? as usize),
            "--skip-expectations" => skip_expectations = true,
            "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let n = seeds.ok_or("replicate requires --seeds N")?;
    if n == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let base = match days {
        Some(d) => StudyConfig::quick(d, base_seed),
        None => {
            let mut c = StudyConfig::default();
            c.sim.seed = base_seed;
            c
        }
    };
    let threads = threads.unwrap_or_else(titan_runner::recommended_threads);
    let mut opts = titan_runner::ReplicateOptions::consecutive(base, base_seed, n, threads);
    opts.skip_expectations = skip_expectations;
    let report = titan_runner::replicate(&opts)?;
    print!("{}", titan_runner::render_report(&report));
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn logs(args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_opts(args)?;
    let out_dir = opts.out.clone().ok_or("logs requires --out DIR")?;
    let config = study_config(&opts)?;
    let sim = Simulator::new(config.sim)?;
    let output = sim.run();
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
    let write = |name: &str, text: String| -> Result<(), String> {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    write("console.log", output.render_console_log())?;
    write("job.log", output.render_job_log())?;
    write("aprun.log", output.render_aprun_log())?;
    Ok(ExitCode::SUCCESS)
}
