//! Offline stand-in for `rayon`: the combinators this workspace uses
//! (`into_par_iter().chunks().map().reduce()`, `rayon::join`,
//! `rayon::current_num_threads`) backed by a real `std::thread`-based
//! pool (scoped threads pulling indexed tasks from a shared work
//! queue).
//!
//! # Determinism contract
//!
//! Parallelism never changes results. Every `map` stage gathers its
//! outputs **by input index**, and every terminal operation (`reduce`,
//! `sum`, `collect`) folds those outputs **in input order** — so the
//! combine tree is identical to the sequential one regardless of which
//! worker ran which task, how many workers there are, or how the queue
//! interleaved. Byte-identical output on 1 thread and on 64 is a hard
//! guarantee here, not a property of the closures (see DETERMINISM.md).
//!
//! The pool width defaults to the machine's available parallelism and
//! can be pinned with the `TITAN_NUM_THREADS` environment variable
//! (useful for scaling benches and for forcing the sequential path).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Thread-pool width: `TITAN_NUM_THREADS` if set and positive, else the
/// machine's available parallelism, else 1. Cached for the process.
pub fn current_num_threads() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        if let Ok(v) = std::env::var("TITAN_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Runs both closures — `b` on a scoped worker thread, `a` on the
/// caller — and returns `(a(), b())`. A worker panic is propagated to
/// the caller after both complete, matching rayon's `join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The pool primitive: applies `f` to every item with up to `threads`
/// scoped workers pulling indices from a shared work queue, and returns
/// the outputs **in input order**.
///
/// Workers claim tasks through an atomic cursor (a lock-free queue over
/// the index space), so an uneven workload self-balances; the result
/// vector is indexed by input position, so scheduling never reorders
/// anything observable. A panicking task propagates out of the scope
/// after the remaining workers drain.
pub fn scope_map<T, O, F>(items: Vec<T>, threads: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let width = threads.clamp(1, n.max(1));
    if n == 0 || width == 1 {
        return items.into_iter().map(f).collect();
    }
    // One slot per task: the item goes in, the output comes back out.
    // Slot-level mutexes are uncontended (each index is claimed once).
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let (tasks_ref, outs_ref, cursor_ref, f_ref) = (&tasks, &outs, &cursor, &f);
    std::thread::scope(|s| {
        for _ in 0..width {
            s.spawn(move || loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A poisoned slot means a sibling panicked mid-task;
                // stop pulling and let the scope propagate its panic.
                let Ok(mut guard) = tasks_ref[i].lock() else { break };
                let Some(item) = guard.take() else { break };
                drop(guard);
                let out = f_ref(item);
                if let Ok(mut slot) = outs_ref[i].lock() {
                    *slot = Some(out);
                }
            });
        }
    });
    outs.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker held no lock at scope exit")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// The parallel pipeline. `map` stages execute on the pool; terminal
/// operations gather and fold in input order (see the crate docs for
/// why that makes parallelism observationally free).
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Materializes the pipeline into an input-ordered `Vec`, running
    /// any `map` stages on the pool.
    fn drive(self) -> Vec<Self::Item>;

    /// Groups items into `Vec` chunks of at most `size`, in order.
    fn chunks(self, size: usize) -> ParIter<Vec<Self::Item>> {
        assert!(size > 0, "chunk size must be positive");
        let mut items = self.drive().into_iter();
        let mut chunks = Vec::new();
        loop {
            let chunk: Vec<Self::Item> = items.by_ref().take(size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        ParIter { items: chunks }
    }

    /// Applies `f` to every item on the pool. The closure must be
    /// `Fn + Sync`: it is shared across workers.
    fn map<F, O>(self, f: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> O + Sync,
        O: Send,
    {
        ParMap { parent: self, f }
    }

    /// Keeps items satisfying `f` (sequential: filtering is never the
    /// hot stage in this workspace).
    fn filter<F>(self, mut f: F) -> ParIter<Self::Item>
    where
        F: FnMut(&Self::Item) -> bool,
    {
        ParIter {
            items: self.drive().into_iter().filter(|x| f(x)).collect(),
        }
    }

    /// Folds every item into the identity with `op`, in input order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.drive().into_iter().fold(identity(), op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }
}

/// Materialized items, ready for the pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A lazy `map` stage; its closure runs on the pool when driven.
pub struct ParMap<P, F> {
    parent: P,
    f: F,
}

impl<P, F, O> ParallelIterator for ParMap<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> O + Sync,
    O: Send,
{
    type Item = O;
    fn drive(self) -> Vec<O> {
        scope_map(self.parent.drive(), current_num_threads(), self.f)
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunked_map_reduce() {
        let total = (0..100usize)
            .into_par_iter()
            .chunks(7)
            .map(|c| c.into_iter().sum::<usize>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100).sum::<usize>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn scope_map_preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = crate::scope_map(items.clone(), threads, |x| x * 3 + 1);
            assert_eq!(got, expect, "order broke at width {threads}");
        }
    }

    #[test]
    fn scope_map_runs_every_task_exactly_once() {
        let hits = AtomicUsize::new(0);
        let got = crate::scope_map((0..257usize).collect(), 4, |x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(got, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn scope_map_handles_empty_and_single() {
        let empty: Vec<usize> = crate::scope_map(Vec::new(), 8, |x: usize| x);
        assert!(empty.is_empty());
        assert_eq!(crate::scope_map(vec![41usize], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            crate::scope_map((0..64usize).collect(), 4, |x| {
                assert!(x != 17, "boom");
                x
            })
        });
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn filter_then_sum() {
        let s: usize = (0..100usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .map(|x| x)
            .sum();
        assert_eq!(s, (0..100).filter(|x| x % 2 == 0).sum::<usize>());
    }

    #[test]
    fn parallel_reduce_matches_sequential_fold_for_noncommutative_op() {
        // String concatenation is associative but not commutative: any
        // reordering of the combine tree would be visible immediately.
        let words: Vec<String> = (0..50).map(|i| format!("w{i};")).collect();
        let expect = words.concat();
        let got = words
            .clone()
            .into_par_iter()
            .chunks(7)
            .map(|c| c.concat())
            .reduce(String::new, |a, b| a + &b);
        assert_eq!(got, expect);
    }
}
