//! Offline stand-in for `rayon`: the combinators this workspace uses
//! (`into_par_iter().chunks().map().reduce()`, `rayon::join`,
//! `rayon::current_num_threads`) with sequential execution. Results are
//! identical to the parallel versions because the workspace only uses
//! associative, order-insensitive reductions — and a sequential
//! fallback is itself the most deterministic schedule possible.

/// Runs both closures and returns their results. Sequential: `a` then
/// `b`, matching rayon's same-thread fast path.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Thread-pool width used for chunk sizing; 1 in the sequential stand-in.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    type Item;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// The sequential pipeline. Combinator types implement only this trait
/// (never `Iterator`), so method calls stay unambiguous; the underlying
/// std iterator is reached through `into_seq`.
pub trait ParallelIterator: Sized {
    type Item;
    type Inner: Iterator<Item = Self::Item>;

    fn into_seq(self) -> Self::Inner;

    /// Groups items into `Vec` chunks of at most `size`.
    fn chunks(self, size: usize) -> Chunks<Self::Inner> {
        assert!(size > 0, "chunk size must be positive");
        Chunks {
            inner: self.into_seq(),
            size,
        }
    }

    fn map<F, O>(self, f: F) -> SeqIter<std::iter::Map<Self::Inner, F>>
    where
        F: FnMut(Self::Item) -> O,
    {
        SeqIter(self.into_seq().map(f))
    }

    fn filter<F>(self, f: F) -> SeqIter<std::iter::Filter<Self::Inner, F>>
    where
        F: FnMut(&Self::Item) -> bool,
    {
        SeqIter(self.into_seq().filter(f))
    }

    /// Folds every item into the identity with `op`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_seq().fold(identity(), op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_seq().sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_seq().collect()
    }
}

/// Wraps a std iterator as a `ParallelIterator`.
pub struct SeqIter<I>(pub I);

impl<I: Iterator> ParallelIterator for SeqIter<I> {
    type Item = I::Item;
    type Inner = I;
    fn into_seq(self) -> I {
        self.0
    }
}

/// `chunks` adapter; implements only `ParallelIterator`.
pub struct Chunks<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator> ParallelIterator for Chunks<I> {
    type Item = Vec<I::Item>;
    type Inner = ChunksIter<I>;
    fn into_seq(self) -> ChunksIter<I> {
        ChunksIter {
            inner: self.inner,
            size: self.size,
        }
    }
}

/// The std-iterator side of `chunks`.
pub struct ChunksIter<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator> Iterator for ChunksIter<I> {
    type Item = Vec<I::Item>;
    fn next(&mut self) -> Option<Vec<I::Item>> {
        let chunk: Vec<I::Item> = self.inner.by_ref().take(self.size).collect();
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = SeqIter<std::ops::Range<usize>>;
    fn into_par_iter(self) -> Self::Iter {
        SeqIter(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = SeqIter<std::vec::IntoIter<T>>;
    fn into_par_iter(self) -> Self::Iter {
        SeqIter(self.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_map_reduce() {
        let total = (0..100usize)
            .into_par_iter()
            .chunks(7)
            .map(|c| c.into_iter().sum::<usize>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100).sum::<usize>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
