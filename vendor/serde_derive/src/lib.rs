//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input by walking the raw `TokenStream` (the
//! container has no registry, so `syn`/`quote` are unavailable) and
//! emits `serde::Serialize` / `serde::Deserialize` impls over the
//! vendored `serde::Value` tree. The generated representation matches
//! serde's external JSON form for the shapes this workspace uses:
//!
//! - named struct        -> object of fields
//! - newtype struct      -> transparent inner value
//! - tuple struct (n>1)  -> array
//! - unit struct         -> null
//! - unit enum variant   -> `"Variant"`
//! - newtype variant     -> `{"Variant": inner}`
//! - tuple variant (n>1) -> `{"Variant": [..]}`
//! - struct variant      -> `{"Variant": {..}}`
//!
//! Generics and `#[serde(...)]` attributes are not supported; the
//! macro panics with a clear message if it meets either.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed shape of the item the derive is attached to.
enum Item {
    /// `struct Name { fields }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T, ...);`
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { variants }`
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility.
    skip_attrs_and_vis(&toks, &mut i);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive({name}): generic types are not supported by the vendored serde_derive");
    }

    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level_commas(g.stream())
                        .iter()
                        .filter(|c| !c.is_empty())
                        .count(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("derive({name}): unexpected struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("derive({name}): unexpected enum body {other:?}"),
        },
        other => panic!("derive: cannot derive serde traits for `{other}` items"),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub`/`pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on commas at angle-bracket depth zero.
/// Bracketed groups arrive as single `Group` trees, so only `<`/`>`
/// puncts need depth tracking (good enough for ordinary field types).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    let mut depth: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(t);
    }
    out
}

/// Field names of a named-fields body (`a: T, b: U, ...`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("derive: expected variant name, got {other:?}"),
            };
            i += 1;
            let shape = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(
                        split_top_level_commas(g.stream())
                            .iter()
                            .filter(|c| !c.is_empty())
                            .count(),
                    )
                }
                // `None` or `= discriminant` (ignored): unit variant.
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// --- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                let _ = write!(
                    body,
                    "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Value::Object(vec![{body}])\
                   }}\
                 }}"
            );
        }
        Item::TupleStruct { name, arity: 1 } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Serialize::to_value(&self.0)\
                   }}\
                 }}"
            );
        }
        Item::TupleStruct { name, arity } => {
            let mut body = String::new();
            for i in 0..*arity {
                let _ = write!(body, "::serde::Serialize::to_value(&self.{i}),");
            }
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Value::Array(vec![{body}])\
                   }}\
                 }}"
            );
        }
        Item::UnitStruct { name } => {
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![\
                               (\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut inner = String::new();
                        for b in &binds {
                            let _ = write!(inner, "::serde::Serialize::to_value({b}),");
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                               (\"{vn}\".to_string(), ::serde::Value::Array(vec![{inner}]))]),",
                            binds.join(",")
                        );
                    }
                    VariantShape::Named(fields) => {
                        let mut inner = String::new();
                        for f in fields {
                            let _ = write!(
                                inner,
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                            );
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![\
                               (\"{vn}\".to_string(), ::serde::Value::Object(vec![{inner}]))]),",
                            fields.join(",")
                        );
                    }
                }
            }
            let _ = write!(
                s,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{\
                     match self {{ {arms} }}\
                   }}\
                 }}"
            );
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                let _ = write!(
                    body,
                    "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\"))?,"
                );
            }
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\
                     Ok({name} {{ {body} }})\
                   }}\
                 }}"
            );
        }
        Item::TupleStruct { name, arity: 1 } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\
                   }}\
                 }}"
            );
        }
        Item::TupleStruct { name, arity } => {
            let mut body = String::new();
            for i in 0..*arity {
                let _ = write!(body, "::serde::Deserialize::from_value(&a[{i}])?,");
            }
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\
                     let a = v.as_array_n({arity}, \"{name}\")?;\
                     Ok({name}({body}))\
                   }}\
                 }}"
            );
        }
        Item::UnitStruct { name } => {
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\
                     Ok({name})\
                   }}\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .collect();

            let mut arms = String::new();
            if !unit.is_empty() {
                let mut inner = String::new();
                for v in &unit {
                    let vn = &v.name;
                    let _ = write!(inner, "\"{vn}\" => Ok({name}::{vn}),");
                }
                let _ = write!(
                    arms,
                    "::serde::Value::Str(s) => match s.as_str() {{\
                       {inner}\
                       other => Err(::serde::DeError(format!(\
                         \"unknown {name} variant {{other:?}}\"))),\
                     }},"
                );
            }
            if !data.is_empty() {
                let mut inner = String::new();
                for v in &data {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Tuple(1) => {
                            let _ = write!(
                                inner,
                                "\"{vn}\" => Ok({name}::{vn}(\
                                   ::serde::Deserialize::from_value(inner)?)),"
                            );
                        }
                        VariantShape::Tuple(n) => {
                            let mut elems = String::new();
                            for i in 0..*n {
                                let _ = write!(
                                    elems,
                                    "::serde::Deserialize::from_value(&a[{i}])?,"
                                );
                            }
                            let _ = write!(
                                inner,
                                "\"{vn}\" => {{\
                                   let a = inner.as_array_n({n}, \"{name}::{vn}\")?;\
                                   Ok({name}::{vn}({elems}))\
                                 }},"
                            );
                        }
                        VariantShape::Named(fields) => {
                            let mut body = String::new();
                            for f in fields {
                                let _ = write!(
                                    body,
                                    "{f}: ::serde::Deserialize::from_value(\
                                       inner.get_field(\"{f}\"))?,"
                                );
                            }
                            let _ = write!(inner, "\"{vn}\" => Ok({name}::{vn} {{ {body} }}),");
                        }
                        VariantShape::Unit => unreachable!(),
                    }
                }
                let _ = write!(
                    arms,
                    "::serde::Value::Object(o) if o.len() == 1 => {{\
                       let (tag, inner) = &o[0];\
                       let _ = inner;\
                       match tag.as_str() {{\
                         {inner}\
                         other => Err(::serde::DeError(format!(\
                           \"unknown {name} variant {{other:?}}\"))),\
                       }}\
                     }},"
                );
            }
            let _ = write!(
                s,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\
                     match v {{\
                       {arms}\
                       other => Err(::serde::DeError(format!(\
                         \"cannot deserialize {name} from {{other:?}}\"))),\
                     }}\
                   }}\
                 }}"
            );
        }
    }
    s
}
