//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crate registry, so the workspace vendors
//! the exact API surface it uses: [`Rng`], [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator is xoshiro256\*\* seeded through a
//! SplitMix64 expansion — deterministic across platforms and releases,
//! which is the property the fleet simulator actually depends on
//! (upstream `StdRng` explicitly does *not* promise stream stability
//! between versions; this one does).
//!
//! Not implemented (unused here, and deliberately so — the determinism
//! lint forbids them in simulation crates): `thread_rng`, `from_entropy`,
//! the `random()` free function, and the `distributions` module. The
//! workspace builds its samplers from first principles in `titan-stats`.

/// Low-level generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty, matching upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p not in [0,1]: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, spreading it over the full
    /// state with SplitMix64 (the standard seeding recipe).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64_next(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable from a generator's standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision (the upstream
    /// `Standard` recipe).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open / inclusive intervals.
/// Mirrors upstream's `SampleUniform` so the blanket range impls below
/// stay generic — that genericity is what lets type inference flow from
/// the use site into integer range literals (`rng.gen_range(0..n) + u64`).
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Maps a uniform `u64` onto `[0, span)` by 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is < span/2^64,
/// far below anything a simulation could observe).
fn bounded_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add(bounded_u64(span, rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(bounded_u64(span + 1, rng) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low <= high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
        assert!(low < high, "gen_range: empty range");
        low + f32::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
        assert!(low <= high, "gen_range: empty range");
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    ///
    /// Unlike upstream `StdRng` (ChaCha12, stream-unstable across rand
    /// releases), this generator's output is a fixed function of the seed
    /// forever — a hard requirement for replaying the Titan fleet
    /// bit-for-bit from a committed seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
        /// `next_u64` invocations since construction — profiling metadata
        /// for the titan-prof cost ledger, deliberately excluded from
        /// equality and from [`StdRng::state`] so checkpoint identity is
        /// untouched by instrumentation.
        draws: u64,
    }

    /// Stream identity is the 256-bit state alone; the draw counter is
    /// observability metadata and resets across checkpoint restore.
    impl PartialEq for StdRng {
        fn eq(&self, other: &Self) -> bool {
            self.s == other.s
        }
    }

    impl Eq for StdRng {}

    /// Small-state generator alias; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            self.draws = self.draws.wrapping_add(1);
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// `next_u64` invocations since this generator was built (every
        /// `gen`/`gen_range`/`sample` call bottoms out here). Pure
        /// metadata: reading it never perturbs the stream.
        pub fn draws(&self) -> u64 {
            self.draws
        }

        /// The full 256-bit internal state, for checkpointing. Feeding
        /// the returned words back through [`StdRng::from_state`] yields
        /// a generator that continues the exact same output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator mid-stream from [`StdRng::state`] words.
        /// The all-zero fixed point is rejected the same way
        /// `from_seed` rejects it, so a corrupted checkpoint cannot
        /// wedge the engine.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                    draws: 0,
                };
            }
            StdRng { s, draws: 0 }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is the one fixed point of the engine;
            // never admit it (can only arise from a hostile from_seed).
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s, draws: 0 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn draw_counter_tracks_next_u64_and_stays_out_of_identity() {
        let mut r = StdRng::seed_from_u64(7);
        assert_eq!(r.draws(), 0);
        let _: u64 = r.gen();
        let _: f64 = r.gen();
        let _ = r.gen_range(0u64..=u64::MAX); // inclusive full span: one draw
        assert_eq!(r.draws(), 3);
        // Reading the counter never perturbs the stream, and equality /
        // state ignore it: a restored generator with zero draws compares
        // equal to the original mid-stream.
        let resumed = StdRng::from_state(r.state());
        assert_eq!(resumed.draws(), 0);
        assert_eq!(resumed, r);
        let mut a = resumed.clone();
        let mut b = r.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let k = r.gen_range(3u32..10);
            assert!((3..10).contains(&k));
            let k = r.gen_range(0u64..=5);
            assert!(k <= 5);
        }
    }

    #[test]
    fn mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((s / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
