//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde::Value` tree with JSON syntax. Output is deterministic
//! (object order is whatever the `Serialize` impl produced; float
//! formatting uses Rust's shortest round-trip `Display`).

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type for both directions, matching the `serde_json::Error`
/// call sites (`Display` + `std::error::Error`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    Ok(T::from_value(&v)?)
}

// --- printing --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // serde_json writes null for non-finite floats.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json's `1.0` (not `1`) for whole floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of plain bytes (everything
                    // up to the next quote or escape) and validate that
                    // run once. Validating from `pos` to the *end of
                    // input* per character — the previous shape — made
                    // parsing quadratic in document size, which
                    // multi-megabyte checkpoint documents turned into
                    // minutes of CPU.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let n: u64 = from_str("42").unwrap();
        assert_eq!(n, 42);
        let s: String = from_str("\"a\\\"b\\n\"").unwrap();
        assert_eq!(s, "a\"b\n");
    }

    #[test]
    fn vec_pretty_roundtrip() {
        let v = vec![1u32, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2,\n  3\n]");
        let back: Vec<u32> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_parse() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5], "b": null, "c": {"d": "x"}}"#).unwrap();
        assert_eq!(v.get_field("b"), &Value::Null);
        assert_eq!(
            v.get_field("a"),
            &Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(3.5)])
        );
        assert_eq!(v.get_field("c").get_field("d"), &Value::Str("x".into()));
    }

    #[test]
    fn long_and_multibyte_strings_roundtrip() {
        // The chunked fast path: plain runs, escapes at both ends, and
        // multibyte UTF-8 interleaved.
        let s = format!("é{}\"tail\\é", "x".repeat(10_000));
        let json = to_string(&s.as_str()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Invalid UTF-8 inside a string is rejected, not mangled.
        let mut bytes = json.into_bytes();
        bytes[5] = 0xFF;
        assert!(std::str::from_utf8(&bytes).is_err());
    }

    #[test]
    fn bad_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
