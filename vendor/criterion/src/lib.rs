//! Offline stand-in for `criterion`. Benches compile and run with the
//! same source: each registered closure is timed over a small fixed
//! iteration count and a one-line result is printed. No statistics, no
//! HTML reports — just enough to keep `cargo bench` (and `cargo test
//! --benches`) working without the registry.
//!
//! Timing uses `std::time::Instant`, which is fine here: benches are
//! measurement tools, not simulation code, and live outside the crates
//! `cargo xtask lint` holds to the no-wall-clock rule.

use std::time::Instant;

/// Re-export matching `criterion::black_box` call sites.
pub use std::hint::black_box;

/// Iterations per bench in the stand-in.
const ITERS: u32 = 10;

/// Top-level bench registry handle.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// Group of related benches; configuration methods are accepted and
/// ignored (the stand-in has no sampling to configure).
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bench identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a parameter value (`group/param` naming).
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name plus parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Throughput annotation; accepted and ignored.
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-bench timing handle.
pub struct Bencher {
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(f());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total_nanos / b.iters as u128
    } else {
        0
    };
    println!("bench {name}: {mean} ns/iter (n={})", b.iters);
}

/// Declares a bench group: `criterion_group!(benches, f1, f2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
