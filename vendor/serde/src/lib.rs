//! Offline stand-in for `serde`.
//!
//! The build container has no crate registry, so the workspace vendors a
//! minimal serde: a concrete [`Value`] tree instead of the
//! serializer-visitor machinery, plus `#[derive(Serialize, Deserialize)]`
//! macros (see `serde_derive`) that generate `Value` conversions matching
//! serde's external JSON representation (structs as objects, unit enum
//! variants as strings, data-carrying variants as single-key objects,
//! newtypes transparent).
//!
//! `serde_json` in `vendor/serde_json` prints and parses this tree, so
//! existing `to_string_pretty`/`from_str` call sites round-trip
//! unchanged.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/serializable JSON-like document tree.
///
/// Numbers keep their integer/float identity so `u64` survives the round
/// trip exactly (a single `f64` repr would corrupt ids above 2^53).
/// Objects preserve insertion order, which keeps output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Field lookup on an object; missing fields and non-objects return
    /// `Null`, letting `Option` fields deserialize as `None`.
    pub fn get_field(&self, name: &str) -> &Value {
        match self {
            Value::Object(o) => o
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as an array of exactly `n` elements.
    pub fn as_array_n(&self, n: usize, what: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Array(a) if a.len() == n => Ok(a),
            Value::Array(a) => Err(DeError(format!(
                "{what}: expected {n} elements, got {}",
                a.len()
            ))),
            other => Err(DeError(format!("{what}: expected array, got {other:?}"))),
        }
    }

    /// The value as an object's key/value slice.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Object(o) => Ok(o),
            other => Err(DeError(format!("{what}: expected object, got {other:?}"))),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- scalar impls ----------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(DeError(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(DeError(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    ref other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array_n(N, "array")?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(a) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = [$(stringify!($t)),+].len();
                let a = v.as_array_n(N, "tuple")?;
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Renders a map key: strings pass through, integer keys use their
/// decimal form (serde_json requires string keys in objects).
fn key_to_string(k: &Value) -> Result<String, DeError> {
    match k {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        other => Err(DeError(format!("unsupported map key {other:?}"))),
    }
}

/// Parses a map key back into the value a key type deserializes from.
fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::UInt(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::Int(n)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut o = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = key_to_string(&k.to_value()).expect("map key must be string-like");
            o.push((key, v.to_value()));
        }
        Value::Object(o)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut out = BTreeMap::new();
        for (k, item) in v.as_object("map")? {
            out.insert(K::from_value(&key_from_string(k))?, V::from_value(item)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by rendered key: hash iteration order must never leak
        // into serialized output.
        let mut o: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(&k.to_value()).expect("map key must be string-like"),
                    v.to_value(),
                )
            })
            .collect();
        o.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(o)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut out = HashMap::with_hasher(S::default());
        for (k, item) in v.as_object("map")? {
            out.insert(K::from_value(&key_from_string(k))?, V::from_value(item)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
