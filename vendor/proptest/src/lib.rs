//! Offline stand-in for `proptest`.
//!
//! Same macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`)
//! and the combinators this workspace's test suites use, but generation
//! is driven by a deterministic per-test RNG seeded from the test's
//! module path and name — no entropy, no wall clock, so the suite obeys
//! the same determinism rules `cargo xtask lint` enforces on the
//! simulator itself. No shrinking: a failing case panics with the
//! values embedded in the assertion message.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is overkill for a sequential stand-in;
        // 64 keeps full-workspace `cargo test` fast while still walking
        // a meaningful slice of each property's input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator: xoshiro-style mixing seeded from the test
/// name, so every `cargo test` run replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 2],
}

impl TestRng {
    /// Seeds from the test's fully qualified name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // SplitMix64 expansion of the hash into two nonzero words.
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next() | 1, next()],
        }
    }

    /// Next raw 64-bit word (xoroshiro128++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, mut s1] = self.state;
        let result = s0
            .wrapping_add(s1)
            .rotate_left(17)
            .wrapping_add(s0);
        s1 ^= s0;
        self.state = [s0.rotate_left(49) ^ s1 ^ (s1 << 21), s1.rotate_left(28)];
        result
    }

    /// Uniform integer in `[0, bound)` (128-bit widening multiply, no
    /// modulo bias worth caring about at test scale).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. `Value` matches the real proptest's associated
/// type so `impl Strategy<Value = T>` signatures compile unchanged.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, O> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

// --- integer / float ranges ------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// --- `any` -----------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced; "weird" floats are exercised by
        // dedicated NaN tests, not by blanket `any`.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy for the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- string patterns -------------------------------------------------------

/// A `&str` is treated as a regex-ish pattern. Only the shape the
/// workspace uses is understood: `\PC{lo,hi}` (printable chars,
/// length range); anything else falls back to length 0..=16.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        // Mostly ASCII printable, with occasional multibyte printable
        // characters so parsers meet real UTF-8.
        const EXTRA: [char; 8] = ['é', 'λ', '→', '█', '🦀', 'Ω', '»', '✓'];
        (0..len)
            .map(|_| {
                if rng.below(16) == 0 {
                    EXTRA[rng.below(EXTRA.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                }
            })
            .collect()
    }
}

/// Extracts the trailing `{lo,hi}` repetition from a pattern.
fn parse_repeat(pat: &str) -> Option<(usize, usize)> {
    let open = pat.rfind('{')?;
    let close = pat.rfind('}')?;
    let body = pat.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// --- prop:: combinator modules --------------------------------------------

pub mod prop {
    pub mod collection {
        use super::super::{Range, Strategy, TestRng};

        /// `Vec` strategy with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `prop::collection::vec(elem, lo..hi)`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.new_value(rng);
                (0..len).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `Option` strategy over an inner strategy.
        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(inner)` — `None` about a quarter of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.new_value(rng))
                }
            }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform pick from a fixed set.
        pub struct Select<T: Clone>(Vec<T>);

        /// `prop::sample::select(choices)`.
        pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
            assert!(!choices.is_empty(), "select over empty set");
            Select(choices)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod test_runner {
    pub use crate::{ProptestConfig, TestRng};
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

// --- macros ----------------------------------------------------------------

/// Assertion inside a property; panics with the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("property failed: {} ({})", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "property failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "property failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            );
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                let ($($arg,)+) = (
                    $($crate::Strategy::new_value(&($strat), &mut rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let mut c = crate::TestRng::for_test("x::z");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3u64..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.0f64..1e6).new_value(&mut rng);
            assert!((0.0..1e6).contains(&f));
            let neg = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = crate::TestRng::for_test("strings");
        for _ in 0..200 {
            let s = "\\PC{0,24}".new_value(&mut rng);
            assert!(s.chars().count() <= 24);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_plumbing(v in prop::collection::vec(0u32..100, 0..10), b in any::<bool>()) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|x| *x < 100), "value out of range");
            let _ = b;
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
