//! Offline stand-in for `bytes`: just `BytesMut`, backed by `Vec<u8>`.
//! The workspace uses it as a growable byte buffer, not for zero-copy
//! splitting, so a plain vector matches the observable behavior.

/// Growable byte buffer with the subset of `bytes::BytesMut` this
/// workspace touches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes into the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

#[cfg(test)]
mod tests {
    use super::BytesMut;

    #[test]
    fn acts_like_a_vec() {
        let mut b = BytesMut::with_capacity(8);
        assert!(b.is_empty());
        b.extend_from_slice(b"ab");
        b.extend_from_slice(b"c");
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], b"abc");
        assert_eq!(std::str::from_utf8(&b).unwrap(), "abc");
    }
}
