//! End-to-end guarantees of the `titan-health/1` stream, driven
//! through the real `titan-repro` binary:
//!
//! 1. `--health` is a pure observer — the printed run report is
//!    byte-identical with and without it;
//! 2. replicated health documents are byte-identical at
//!    `TITAN_NUM_THREADS` 1 and 8;
//! 3. a `--from-checkpoint` resume re-renders the exact health bytes
//!    of the uninterrupted run, and a health-flag mismatch between the
//!    checkpoint and the resume command fails with a clean error;
//! 4. every fired alert resolves through the flight recording to a
//!    causing fault draft (`health summarize --trace` provenance walk);
//! 5. the `health summarize|watch|rules` views carry their stable
//!    markers.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_titan-repro")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("health_determinism");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let dir = dir.join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn run_in(dir: &Path, threads: &str, args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .current_dir(dir)
        .env("TITAN_NUM_THREADS", threads)
        .output()
        .expect("spawn titan-repro");
    assert!(
        out.status.success(),
        "titan-repro {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// `--health` must never perturb the run: the console report is the
/// same bytes whether or not the sink is collecting.
#[test]
fn health_collection_is_a_pure_observer() {
    let dir = tmp("pure_observer");
    let bare = run_in(&dir, "1", &["run", "--days", "10", "--seed", "21"]);
    let with = run_in(
        &dir,
        "1",
        &["run", "--days", "10", "--seed", "21", "--health", "health.jsonl"],
    );
    let bare_text = String::from_utf8_lossy(&bare.stdout);
    let with_text = String::from_utf8_lossy(&with.stdout);
    // The collecting run prints one extra `wrote …` line; everything
    // before it (the whole report) must match byte for byte.
    assert!(
        with_text.starts_with(bare_text.as_ref()),
        "run report changed under --health:\nbare:\n{bare_text}\nwith:\n{with_text}"
    );
    let doc = std::fs::read_to_string(dir.join("health.jsonl")).expect("health doc");
    assert!(doc.starts_with("{\"schema\":\"titan-health/1\""), "health header");
}

/// Replicated health documents are a per-seed deterministic artifact:
/// the fan-out thread width must be invisible in every file.
#[test]
fn replicate_health_identical_at_threads_1_vs_8() {
    let d1 = tmp("replicate_t1");
    let d8 = tmp("replicate_t8");
    for (threads, dir) in [("1", &d1), ("8", &d8)] {
        run_in(
            dir,
            threads,
            &[
                "replicate",
                "--seeds",
                "2",
                "--days",
                "6",
                "--seed",
                "42",
                "--threads",
                threads,
                "--skip-expectations",
                "--health",
                "health",
            ],
        );
    }
    for seed in ["42", "43"] {
        let name = format!("health/health-seed-{seed}.jsonl");
        let a = std::fs::read(d1.join(&name)).expect("t1 health");
        let b = std::fs::read(d8.join(&name)).expect("t8 health");
        assert!(!a.is_empty());
        assert_eq!(a, b, "health doc for seed {seed} differs between thread widths");
        let text = String::from_utf8(a).expect("utf8 health");
        assert!(text.starts_with("{\"schema\":\"titan-health/1\""), "health header");
        assert!(text.contains("\"rec\":\"summary\""), "health summary record");
    }
}

/// The health state rides inside the checkpoint (`HealthSnap` joins
/// `ObsSnapshot`), so a resume re-renders the exact bytes of the
/// uninterrupted run's health document.
#[test]
fn resumed_health_doc_is_byte_identical() {
    for threads in ["1", "8"] {
        let through = tmp(&format!("resume_through_t{threads}"));
        let resumed = tmp(&format!("resume_resumed_t{threads}"));
        let a = run_in(
            &through,
            threads,
            &[
                "run",
                "--days",
                "30",
                "--seed",
                "7",
                "--checkpoint-every",
                "864000", // 10 days: checkpoints at t = 10 d and 20 d
                "--ckpt-dir",
                "ckpts",
                "--health",
                "health.jsonl",
            ],
        );
        let ckpt = through.join("ckpts").join("ckpt-000001.json");
        assert!(ckpt.is_file(), "second checkpoint missing");
        let b = run_in(
            &resumed,
            threads,
            &[
                "run",
                "--from-checkpoint",
                ckpt.to_str().expect("utf8 path"),
                "--health",
                "health.jsonl",
            ],
        );
        assert_eq!(
            String::from_utf8_lossy(&a.stdout),
            String::from_utf8_lossy(&b.stdout),
            "stdout diverged after resume (threads {threads})"
        );
        let x = std::fs::read(through.join("health.jsonl")).expect("through health");
        let y = std::fs::read(resumed.join("health.jsonl")).expect("resumed health");
        assert!(!x.is_empty());
        assert_eq!(x, y, "health doc diverged after resume (threads {threads})");
    }
}

/// Resuming with a different `--health` posture than the checkpoint
/// was written with would silently change what the sink observed, so
/// both directions of the mismatch must fail with a clean pointer at
/// the missing/extra flag.
#[test]
fn health_flag_mismatch_on_resume_fails_cleanly() {
    let dir = tmp("flag_mismatch");
    run_in(
        &dir,
        "1",
        &[
            "run", "--days", "12", "--seed", "3", "--checkpoint-every", "518400", // 6 d
            "--ckpt-dir", "with-health", "--health", "health.jsonl",
        ],
    );
    run_in(
        &dir,
        "1",
        &[
            "run", "--days", "12", "--seed", "3", "--checkpoint-every", "518400",
            "--ckpt-dir", "without-health",
        ],
    );
    let cases = [
        ("with-health", vec![], "written with --health"),
        ("without-health", vec!["--health", "h.jsonl"], "written without --health"),
    ];
    for (ckpt_dir, extra, needle) in cases {
        let ckpt = dir.join(ckpt_dir).join("ckpt-000000.json");
        let mut args = vec!["run", "--from-checkpoint", ckpt.to_str().expect("utf8 path")];
        args.extend(extra);
        let out = Command::new(bin())
            .args(&args)
            .current_dir(&dir)
            .env("TITAN_NUM_THREADS", "1")
            .output()
            .expect("spawn titan-repro");
        assert!(!out.status.success(), "mismatched resume from {ckpt_dir} succeeded");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(needle),
            "error from {ckpt_dir} resume missing `{needle}`:\n{err}"
        );
        assert!(!err.contains("panicked"), "mismatch panicked:\n{err}");
    }
}

/// The provenance contract: on a window long enough to fire alerts,
/// `health summarize --trace` walks every alert's trace id back to a
/// causing fault draft and says so; `watch` renders the live surface;
/// `rules` prints the default rule set as JSON.
#[test]
fn alerts_resolve_through_trace_and_views_render() {
    let dir = tmp("provenance");
    run_in(
        &dir,
        "1",
        &[
            "run", "--days", "60", "--seed", "42", "--health", "health.jsonl", "--trace",
            "trace.jsonl",
        ],
    );
    let sum = run_in(
        &dir,
        "1",
        &["health", "summarize", "health.jsonl", "--trace", "trace.jsonl"],
    );
    let text = String::from_utf8_lossy(&sum.stdout);
    for marker in ["titan-health", "intervals", "alerts", "provenance OK"] {
        assert!(text.contains(marker), "summarize missing `{marker}`:\n{text}");
    }
    // The 60-day GEE storm load fires the burst rule — the provenance
    // line only prints after at least one successful chain walk.
    assert!(
        !text.contains("0 alert(s) walk back"),
        "expected a fired alert on the 60-day window:\n{text}"
    );

    let watch = run_in(&dir, "1", &["health", "watch", "health.jsonl"]);
    let watch_text = String::from_utf8_lossy(&watch.stdout);
    for marker in ["titan-health watch", "stripe contrast", "hot cabinets", "spares"] {
        assert!(watch_text.contains(marker), "watch missing `{marker}`:\n{watch_text}");
    }

    let rules = run_in(&dir, "1", &["health", "rules"]);
    let rules_text = String::from_utf8_lossy(&rules.stdout);
    for marker in ["Burst", "MtbfBelow", "OffenderShare", "SpareDepletion"] {
        assert!(rules_text.contains(marker), "rules missing `{marker}`:\n{rules_text}");
    }
}
