//! End-to-end telemetry determinism, driven through the real
//! `titan-repro` binary (the contract OBSERVABILITY.md documents):
//!
//! 1. the metrics JSON a replication writes is byte-identical at
//!    `--threads 1` and `--threads 8` for the same seed set;
//! 2. enabling `--metrics` never changes the simulation output — the
//!    printed report is identical with and without the flag;
//! 3. `check --json` and `profile` produce their documented shapes.
//!
//! These run the binary Cargo built for this package (debug in `cargo
//! test`), so short windows keep them affordable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_titan-repro")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("telemetry_determinism");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

fn run_ok(args: &[&str]) -> Output {
    let out = Command::new(bin()).args(args).output().expect("spawn titan-repro");
    assert!(
        out.status.success(),
        "titan-repro {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Satellite guarantee: same seeds ⇒ byte-identical metrics JSON at
/// --threads 1 vs --threads 8. The document carries sim-time
/// quantities only, so the thread width of the fan-out must be
/// invisible in it.
#[test]
fn replicate_metrics_json_identical_at_threads_1_vs_8() {
    let m1 = tmp("metrics_t1.json");
    let m8 = tmp("metrics_t8.json");
    for (threads, path) in [("1", &m1), ("8", &m8)] {
        run_ok(&[
            "replicate",
            "--seeds",
            "2",
            "--days",
            "6",
            "--seed",
            "42",
            "--threads",
            threads,
            "--skip-expectations",
            "--metrics",
            path.to_str().expect("utf8 path"),
        ]);
    }
    let a = std::fs::read(&m1).expect("read t1 metrics");
    let b = std::fs::read(&m8).expect("read t8 metrics");
    assert!(!a.is_empty());
    assert_eq!(a, b, "metrics JSON differs between --threads 1 and --threads 8");
    let text = String::from_utf8(a).expect("utf8 metrics");
    assert!(text.contains("\"titan-obs-replicate/1\""), "replicate schema tag");
    assert!(text.contains("\"titan-obs/2\""), "per-seed schema tag");
    for section in ["\"engine\"", "\"faults\"", "\"sec\"", "\"nvsmi\"", "\"spans\""] {
        assert!(text.contains(section), "metrics doc missing {section} section");
    }
}

/// Satellite guarantee: a metrics-enabled run produces the same sim
/// output as a metrics-disabled run — the report text (rendered from
/// the simulation's logs) is identical; only the `wrote …` line and
/// the file on disk are new.
#[test]
fn metrics_flag_never_changes_the_report() {
    let plain = run_ok(&["run", "--days", "6", "--seed", "7"]);
    let path = tmp("single_metrics.json");
    let with_metrics = run_ok(&[
        "run",
        "--days",
        "6",
        "--seed",
        "7",
        "--metrics",
        path.to_str().expect("utf8 path"),
    ]);
    let strip = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&plain),
        strip(&with_metrics),
        "--metrics changed the simulation report"
    );
    let doc = std::fs::read_to_string(&path).expect("metrics file");
    assert!(doc.contains("\"schema\": \"titan-obs/2\""));
    assert!(doc.contains("\"events_dequeued\""));
    assert!(doc.contains("\"timeseries\""), "titan-obs/2 doc missing timeseries section");
}

/// `check --json` writes machine-readable per-check verdicts with the
/// fields the CI consumers key on.
#[test]
fn check_json_has_per_check_verdicts() {
    let path = tmp("checks.json");
    // A 6-day window fails some long-horizon checks; the command exits
    // nonzero then, but must still have written the document.
    let out = Command::new(bin())
        .args(["check", "--days", "6", "--json", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn titan-repro");
    assert!(
        String::from_utf8_lossy(&out.stderr).is_empty(),
        "check --json errored: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&path).expect("checks file");
    assert!(doc.contains("\"schema\": \"titan-check/1\""));
    for field in ["\"id\"", "\"verdict\"", "\"paper\"", "\"measured\"", "\"pass\"", "\"fail\""] {
        assert!(doc.contains(field), "check doc missing {field}");
    }
    // Every verdict printed to stdout appears in the document.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let printed = stdout.lines().filter(|l| l.starts_with('[')).count();
    assert!(printed > 0, "no checks printed");
    assert_eq!(doc.matches("\"verdict\"").count(), printed);
}

/// `profile` prints the deterministic cost-ledger table, the
/// quarantined wall-clock attribution, and the sim-metric breakdown,
/// and its `--metrics` document matches a plain run's.
#[test]
fn profile_prints_phases_and_matches_run_metrics() {
    let prof_path = tmp("profile_metrics.json");
    let out = run_ok(&[
        "profile",
        "--days",
        "6",
        "--seed",
        "42",
        "--metrics",
        prof_path.to_str().expect("utf8 path"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for marker in [
        "deterministic cost ledger (titan-prof/2",
        "wall-clock attribution (this host",
        "engine:event_loop",
        "study:render_parse_logs",
        "cli:collect_metrics",
        "sim-time telemetry",
        "[engine]",
        "[histograms]",
        "[spans]",
    ] {
        assert!(stdout.contains(marker), "profile output missing `{marker}`");
    }
    // The sim-time document is independent of how it was produced:
    // profile and run agree byte-for-byte for the same seed/window.
    let run_path = tmp("run_metrics.json");
    run_ok(&[
        "run",
        "--days",
        "6",
        "--seed",
        "42",
        "--metrics",
        run_path.to_str().expect("utf8 path"),
    ]);
    let a = std::fs::read(&prof_path).expect("profile metrics");
    let b = std::fs::read(&run_path).expect("run metrics");
    assert_eq!(a, b, "profile and run metrics documents differ");
}

/// Tentpole guarantee: the flight-recorder trace a replication writes
/// is byte-identical at --threads 1 and --threads 8 for the same seed
/// set. Trace ids are minted in sim order, so thread width must be
/// invisible in the JSONL.
#[test]
fn replicate_traces_identical_at_threads_1_vs_8() {
    let d1 = tmp("traces_t1");
    let d8 = tmp("traces_t8");
    for (threads, dir) in [("1", &d1), ("8", &d8)] {
        run_ok(&[
            "replicate",
            "--seeds",
            "2",
            "--days",
            "6",
            "--seed",
            "42",
            "--threads",
            threads,
            "--skip-expectations",
            "--trace",
            dir.to_str().expect("utf8 path"),
        ]);
    }
    for seed in ["42", "43"] {
        let a = std::fs::read(d1.join(format!("trace-seed-{seed}.jsonl"))).expect("t1 trace");
        let b = std::fs::read(d8.join(format!("trace-seed-{seed}.jsonl"))).expect("t8 trace");
        assert!(!a.is_empty());
        assert_eq!(a, b, "trace for seed {seed} differs between thread widths");
        let text = String::from_utf8(a).expect("utf8 trace");
        assert!(text.starts_with("{\"schema\":\"titan-trace/1\""), "trace header");
    }
}

/// Tentpole guarantee: `--trace` is a pure observer — the printed
/// report is identical with and without it.
#[test]
fn trace_flag_never_changes_the_report() {
    let plain = run_ok(&["run", "--days", "6", "--seed", "7"]);
    let path = tmp("observer.jsonl");
    let traced = run_ok(&[
        "run",
        "--days",
        "6",
        "--seed",
        "7",
        "--trace",
        path.to_str().expect("utf8 path"),
    ]);
    let strip = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain), strip(&traced), "--trace changed the simulation report");
}

/// Acceptance criterion: `trace verify` proves complete provenance on
/// the default 60-day window — every chain terminates at a FaultDraft
/// root and every console line / SEC alert has a causal parent.
#[test]
fn trace_verify_passes_on_default_window() {
    let path = tmp("verify_60d.jsonl");
    run_ok(&["run", "--days", "60", "--seed", "42", "--trace", path.to_str().expect("utf8 path")]);
    let out = run_ok(&["trace", "verify", path.to_str().expect("utf8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("provenance OK"), "verify did not report OK:\n{stdout}");
    // Summarize and Chrome export both accept the same file.
    let sum = run_ok(&["trace", "summarize", path.to_str().expect("utf8 path")]);
    let sum_text = String::from_utf8_lossy(&sum.stdout);
    for marker in ["records", "fault_draft", "console_line", "sec_alert"] {
        assert!(sum_text.contains(marker), "summary missing `{marker}`:\n{sum_text}");
    }
    let chrome = tmp("verify_60d.chrome.json");
    run_ok(&[
        "trace",
        "show",
        path.to_str().expect("utf8 path"),
        "--chrome",
        chrome.to_str().expect("utf8 path"),
    ]);
    let chrome_doc = std::fs::read_to_string(&chrome).expect("chrome export");
    assert!(chrome_doc.contains("\"traceEvents\""), "not a Chrome trace document");
}

/// Satellite guarantee: `profile --json` writes the frozen
/// `titan-prof/2` document — the deterministic per-scope cost ledger
/// plus the embedded sim-time metrics document, with the quarantined
/// wall section last so tooling can strip it.
#[test]
fn profile_json_writes_titan_profile_doc() {
    let path = tmp("profile_doc.json");
    run_ok(&["profile", "--days", "6", "--seed", "42", "--json", path.to_str().expect("utf8 path")]);
    let doc = std::fs::read_to_string(&path).expect("profile doc");
    assert!(doc.contains("\"schema\": \"titan-prof/2\""));
    for field in [
        "\"ledger\"",
        "\"totals\"",
        "\"metrics\"",
        "\"wall\"",
        "\"dequeues\"",
        "\"rng_draws\"",
        "\"alloc_bytes\"",
        "\"ev:",
        "engine:event_loop",
    ] {
        assert!(doc.contains(field), "profile doc missing {field}");
    }
    // The embedded metrics document is the titan-obs/2 shape, and the
    // non-deterministic wall section is the last top-level key.
    assert!(doc.contains("\"titan-obs/2\""), "embedded metrics schema tag");
    let wall_pos = doc.rfind("\"wall\"").expect("wall key");
    let metrics_pos = doc.find("\"metrics\"").expect("metrics key");
    assert!(wall_pos > metrics_pos, "wall section is not last");
}

/// Satellite guarantee: `--span-capacity` resizes the recent-span ring
/// and the chosen capacity is recorded in the metrics document.
#[test]
fn span_capacity_flag_is_recorded_in_metrics() {
    let path = tmp("span_cap.json");
    run_ok(&[
        "run",
        "--days",
        "6",
        "--seed",
        "7",
        "--span-capacity",
        "8",
        "--metrics",
        path.to_str().expect("utf8 path"),
    ]);
    let doc = std::fs::read_to_string(&path).expect("metrics file");
    assert!(doc.contains("\"capacity\": 8"), "span ring capacity not recorded:\n{doc}");
}
