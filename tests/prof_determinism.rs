//! End-to-end determinism of the `titan-prof/2` cost ledger, driven
//! through the real `titan-repro` binary (the contract OBSERVABILITY.md
//! documents):
//!
//! 1. the deterministic section of a `--prof` document (everything but
//!    the quarantined `wall` block and the host-variant CLI-scope
//!    allocator counters — CLI scopes cover rayon-parallel figure work
//!    whose thread placement tracks the pool width) is byte-identical
//!    at `TITAN_NUM_THREADS` 1 and 8, engine alloc counters included;
//! 2. the resume-invariant section (additionally excluding the
//!    allocator counters, which measure host-process heap state a
//!    checkpoint does not carry) is byte-identical between a straight
//!    run and a `--from-checkpoint` resume;
//! 3. `--prof` is a pure observer — the printed report is unchanged;
//! 4. resume validates the ledger flag against the checkpoint, both
//!    ways, like `--health`;
//! 5. `profile --perfetto` is byte-stable for a fixed seed and
//!    `--flamegraph` has the documented collapsed-stack shape;
//! 6. `bench diff` reads the committed `BENCH_PR*.json` snapshots.
//!
//! No comparison in this file looks at a wall-clock value: the `wall`
//! section is stripped (via [`titan_obs::ProfDoc::deterministic_json`]
//! and [`titan_obs::ProfDoc::invariant_json`]) before any byte
//! equality, and stdout comparisons strip nothing but `wrote …` lines.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_titan-repro")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("prof_determinism");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let dir = dir.join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn run_in(dir: &Path, threads: &str, args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .current_dir(dir)
        .env("TITAN_NUM_THREADS", threads)
        .output()
        .expect("spawn titan-repro");
    assert!(
        out.status.success(),
        "titan-repro {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read_prof(dir: &Path) -> titan_obs::ProfDoc {
    let text = std::fs::read_to_string(dir.join("prof.json")).expect("prof doc");
    serde_json::from_str(&text).expect("titan-prof/2 parse")
}

/// Tentpole guarantee: the deterministic section of the ledger — every
/// counter including the allocator tallies, with only the `wall` block
/// stripped — is byte-identical across thread widths, and the printed
/// report does not change either.
#[test]
fn prof_deterministic_section_identical_at_threads_1_vs_8() {
    let args = ["run", "--days", "30", "--seed", "7", "--prof", "prof.json"];
    let t1 = tmp("threads_1");
    let t8 = tmp("threads_8");
    let a = run_in(&t1, "1", &args);
    let b = run_in(&t8, "8", &args);
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "stdout differs between thread widths"
    );
    let da = read_prof(&t1);
    let db = read_prof(&t8);
    assert_eq!(da.schema, "titan-prof/2");
    assert!(!da.ledger.is_empty(), "empty ledger");
    assert_eq!(
        da.deterministic_json(),
        db.deterministic_json(),
        "deterministic prof section differs between --threads 1 and 8"
    );
    // The engine allocation story is complete: every engine scope's
    // allocator counters are in the ledger, and they sum to the totals.
    let alloc_sum: u64 = da.ledger.values().map(|c| c.allocs).sum();
    assert_eq!(alloc_sum, da.totals.allocs, "alloc attribution does not sum to totals");
}

/// Resume invariant: the non-allocator counters are exactly equal
/// between a straight run and a checkpoint resume, and the invariant
/// section (alloc counters zeroed — heap capacity is host-process
/// state a checkpoint does not carry) is byte-identical.
#[test]
fn prof_invariant_section_identical_across_resume() {
    let through = tmp("resume_through");
    let resumed = tmp("resume_resumed");
    run_in(
        &through,
        "1",
        &[
            "run", "--days", "30", "--seed", "7", "--checkpoint-every", "864000", // 10 d
            "--ckpt-dir", "ckpts", "--prof", "prof.json",
        ],
    );
    let ckpt = through.join("ckpts").join("ckpt-000001.json");
    assert!(ckpt.is_file(), "second checkpoint missing");
    run_in(
        &resumed,
        "1",
        &[
            "run",
            "--from-checkpoint",
            ckpt.to_str().expect("utf8 path"),
            "--prof",
            "prof.json",
        ],
    );
    let da = read_prof(&through);
    let db = read_prof(&resumed);
    assert_eq!(
        da.invariant_json(),
        db.invariant_json(),
        "resume-invariant prof section differs across --from-checkpoint"
    );
    // Spelled out: the event-mix counters agree row by row; only the
    // allocator tallies (and wall) are allowed to differ.
    for (name, a) in &da.ledger {
        let b = &db.ledger[name];
        assert_eq!(a.dequeues, b.dequeues, "{name} dequeues");
        assert_eq!(a.heap_pushes, b.heap_pushes, "{name} heap_pushes");
        assert_eq!(a.console_lines, b.console_lines, "{name} console_lines");
        assert_eq!(a.console_bytes, b.console_bytes, "{name} console_bytes");
        assert_eq!(a.rng_draws, b.rng_draws, "{name} rng_draws");
        assert_eq!(a.trace_records, b.trace_records, "{name} trace_records");
    }
}

/// Satellite guarantee: `--prof` is a pure observer — the report is
/// identical with and without it; only the `wrote …` line is new.
#[test]
fn prof_flag_never_changes_the_report() {
    let dir = tmp("pure_observer");
    let plain = run_in(&dir, "1", &["run", "--days", "30", "--seed", "7"]);
    let profiled =
        run_in(&dir, "1", &["run", "--days", "30", "--seed", "7", "--prof", "prof.json"]);
    let strip = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain), strip(&profiled), "--prof changed the simulation report");
}

/// Resume validates the ledger flag against the checkpoint both ways,
/// with an explanatory error — the restored ledger would otherwise
/// silently miss the pre-boundary counts (or drop the captured ones).
#[test]
fn resume_rejects_prof_flag_mismatch() {
    let dir = tmp("flag_mismatch");
    run_in(
        &dir,
        "1",
        &[
            "run", "--days", "20", "--seed", "7", "--checkpoint-every", "864000",
            "--ckpt-dir", "with_prof", "--prof", "prof.json",
        ],
    );
    run_in(
        &dir,
        "1",
        &[
            "run", "--days", "20", "--seed", "7", "--checkpoint-every", "864000",
            "--ckpt-dir", "without_prof",
        ],
    );
    let cases = [
        ("with_prof", vec![]),
        ("without_prof", vec!["--prof", "prof2.json"]),
    ];
    for (ckpt_dir, extra) in cases {
        let ckpt = dir.join(ckpt_dir).join("ckpt-000000.json");
        let mut args = vec!["run", "--from-checkpoint", ckpt.to_str().expect("utf8 path")];
        args.extend(extra);
        let out = Command::new(bin())
            .args(&args)
            .current_dir(&dir)
            .output()
            .expect("spawn titan-repro");
        assert!(!out.status.success(), "prof flag mismatch accepted for {ckpt_dir}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--prof"),
            "expected a --prof mismatch error for {ckpt_dir}, got:\n{stderr}"
        );
        assert!(!stderr.contains("panicked"), "mismatch caused a panic:\n{stderr}");
    }
}

/// `profile --perfetto` contains no wall-clock values, so it is
/// byte-identical run to run; `--flamegraph` is wall-weighted (not
/// comparable) but must keep the documented collapsed-stack shape.
#[test]
fn profile_exports_have_documented_determinism() {
    let args = [
        "profile", "--days", "6", "--seed", "42", "--flamegraph", "fg.txt", "--perfetto",
        "pf.json",
    ];
    let d1 = tmp("exports_1");
    let d2 = tmp("exports_2");
    run_in(&d1, "1", &args);
    run_in(&d2, "1", &args);
    let p1 = std::fs::read(d1.join("pf.json")).expect("perfetto 1");
    let p2 = std::fs::read(d2.join("pf.json")).expect("perfetto 2");
    assert!(!p1.is_empty());
    assert_eq!(p1, p2, "perfetto counter export differs run to run");
    let text = String::from_utf8(p1).expect("utf8 perfetto");
    assert!(text.contains("\"ph\":\"C\""), "no counter events in perfetto export");

    let fg = std::fs::read_to_string(d1.join("fg.txt")).expect("flamegraph");
    assert!(!fg.is_empty(), "empty flamegraph");
    for line in fg.lines() {
        assert!(line.starts_with("titan;"), "collapsed stack line `{line}` lacks root frame");
        let (_, weight) = line.rsplit_once(' ').expect("weight column");
        weight.parse::<u64>().unwrap_or_else(|_| panic!("non-integer weight in `{line}`"));
    }
    assert!(
        fg.lines().any(|l| l.starts_with("titan;engine:event_loop;ev:")),
        "no event-kind frames nested under the engine loop:\n{fg}"
    );
}

/// `bench diff` reads the committed snapshots: the pre-ledger baseline
/// pairs with the current one (per-kind attribution unavailable), and
/// a self-diff of the current snapshot shows a quiet ledger.
#[test]
fn bench_diff_reads_committed_snapshots() {
    // Integration tests run with the package root as cwd, where the
    // committed BENCH_PR*.json snapshots live.
    let old_new = run_in(Path::new("."), "1", &["bench", "diff", "BENCH_PR8.json", "BENCH_PR10.json"]);
    let text = String::from_utf8_lossy(&old_new.stdout);
    assert!(text.contains("bench diff:"), "missing header:\n{text}");
    assert!(text.contains("events_per_sec"), "missing throughput row:\n{text}");
    assert!(
        text.contains("pre-titan-prof/2"),
        "PR8 snapshot predates the ledger; expected the fallback note:\n{text}"
    );
    let same = run_in(Path::new("."), "1", &["bench", "diff", "BENCH_PR10.json", "BENCH_PR10.json"]);
    let text = String::from_utf8_lossy(&same.stdout);
    assert!(
        text.contains("deterministic ledger deltas"),
        "PR10 snapshot carries a ledger; expected the delta table:\n{text}"
    );
    assert!(text.contains("no scope moved"), "self-diff shows movement:\n{text}");
}
