//! End-to-end checkpoint/restore identity, driven through the real
//! `titan-repro` binary (the contract DETERMINISM.md documents):
//!
//! 1. `run --from-checkpoint` at boundary T reproduces a run that
//!    passed straight through T **byte for byte** — console report on
//!    stdout, `titan-obs/2` metrics document, and `titan-trace/1`
//!    flight recording — at `TITAN_NUM_THREADS` 1 and 8;
//! 2. a corrupted checkpoint (one flipped byte) fails chained-digest
//!    verification with a clean error, never a panic;
//! 3. `ckpt bisect` localizes an injected divergence to the one
//!    checkpoint interval that contains it.
//!
//! Runs use relative artifact paths under per-test working directories
//! so the `wrote …` lines on stdout are byte-comparable too.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const DAY: u64 = 86_400;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_titan-repro")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("checkpoint_determinism");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let dir = dir.join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn run_in(dir: &Path, threads: &str, args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .current_dir(dir)
        .env("TITAN_NUM_THREADS", threads)
        .output()
        .expect("spawn titan-repro");
    assert!(
        out.status.success(),
        "titan-repro {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The tentpole invariant: resuming from checkpoint T produces output
/// byte-identical to a run that passed through T — stdout (report and
/// `wrote …` lines), metrics JSON, and trace JSONL — at thread width 1
/// and 8. Checkpoint progress chatter stays on stderr, so stdout needs
/// no filtering at all.
#[test]
fn resume_is_byte_identical_to_run_through() {
    for threads in ["1", "8"] {
        let through = tmp(&format!("through_t{threads}"));
        let resumed = tmp(&format!("resumed_t{threads}"));
        let a = run_in(
            &through,
            threads,
            &[
                "run",
                "--days",
                "30",
                "--seed",
                "7",
                "--checkpoint-every",
                "864000", // 10 days: checkpoints at t = 10 d and 20 d
                "--ckpt-dir",
                "ckpts",
                "--metrics",
                "metrics.json",
                "--trace",
                "trace.jsonl",
            ],
        );
        let ckpt = through.join("ckpts").join("ckpt-000001.json");
        assert!(ckpt.is_file(), "second checkpoint missing");
        let b = run_in(
            &resumed,
            threads,
            &[
                "run",
                "--from-checkpoint",
                ckpt.to_str().expect("utf8 path"),
                "--metrics",
                "metrics.json",
                "--trace",
                "trace.jsonl",
            ],
        );
        assert_eq!(
            String::from_utf8_lossy(&a.stdout),
            String::from_utf8_lossy(&b.stdout),
            "stdout diverged after resume (threads {threads})"
        );
        for artifact in ["metrics.json", "trace.jsonl"] {
            let x = std::fs::read(through.join(artifact)).expect("through artifact");
            let y = std::fs::read(resumed.join(artifact)).expect("resumed artifact");
            assert!(!x.is_empty());
            assert_eq!(x, y, "{artifact} diverged after resume (threads {threads})");
        }
    }
}

/// A resumed run that keeps checkpointing reproduces the original
/// run's remaining checkpoints exactly — same bytes, same chained
/// digests — so `ckpt bisect` can compare a partial re-run against the
/// original chain. Also covers `ckpt verify` on an intact file.
#[test]
fn resumed_checkpoints_continue_the_identical_chain() {
    let through = tmp("chain_through");
    let resumed = tmp("chain_resumed");
    run_in(
        &through,
        "1",
        &[
            "run", "--days", "30", "--seed", "11", "--checkpoint-every", "518400", // 6 d
            "--ckpt-dir", "ckpts",
        ],
    );
    let first = through.join("ckpts").join("ckpt-000000.json");
    run_in(
        &resumed,
        "1",
        &[
            "run",
            "--from-checkpoint",
            first.to_str().expect("utf8 path"),
            "--checkpoint-every",
            "518400",
            "--ckpt-dir",
            "ckpts",
        ],
    );
    // 30 d at a 6 d cadence: boundaries 6/12/18/24 d => indexes 0..=3.
    for idx in 1..=3 {
        let name = format!("ckpt-{idx:06}.json");
        let x = std::fs::read(through.join("ckpts").join(&name)).expect("through ckpt");
        let y = std::fs::read(resumed.join("ckpts").join(&name)).expect("resumed ckpt");
        assert_eq!(x, y, "{name} differs between original and resumed chains");
    }
    let verify = run_in(&through, "1", &["ckpt", "verify", "ckpts/ckpt-000003.json"]);
    let text = String::from_utf8_lossy(&verify.stdout);
    assert!(text.contains("digest OK"), "verify did not confirm digest:\n{text}");
}

/// Corruption must be detected, not propagated: flipping one byte of a
/// checkpoint makes `--from-checkpoint` fail with a clean chained-digest
/// error — nonzero exit, explanatory message, no panic.
#[test]
fn corrupted_checkpoint_fails_cleanly() {
    let dir = tmp("corrupt");
    run_in(
        &dir,
        "1",
        &[
            "run", "--days", "12", "--seed", "3", "--checkpoint-every", "345600", // 4 d
            "--ckpt-dir", "ckpts",
        ],
    );
    let path = dir.join("ckpts").join("ckpt-000000.json");
    let mut text = std::fs::read_to_string(&path).expect("checkpoint file");
    // Flip one digit of the checkpoint's sim time: still valid JSON, so
    // the failure is digest verification, not a parse error.
    let t_at = text.find("\"t\":").expect("t field") + 4;
    let digit = text[t_at..].chars().next().expect("t digit");
    let flipped = if digit == '9' { '8' } else { '9' };
    text.replace_range(t_at..t_at + 1, &flipped.to_string());
    std::fs::write(&path, text).expect("write corrupted checkpoint");

    let out = Command::new(bin())
        .args(["run", "--from-checkpoint", path.to_str().expect("utf8 path")])
        .current_dir(&dir)
        .output()
        .expect("spawn titan-repro");
    assert!(!out.status.success(), "corrupted checkpoint was accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("digest mismatch"),
        "expected a chained-digest error, got:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "corruption caused a panic:\n{stderr}");
}

/// Acceptance criterion: `ckpt bisect` pins an injected divergence to
/// the single checkpoint interval that contains it, and reports clean
/// agreement for identical runs.
#[test]
fn bisect_localizes_injected_divergence() {
    let clean = tmp("bisect_clean");
    let dirty = tmp("bisect_dirty");
    let base = [
        "run", "--days", "30", "--seed", "5", "--checkpoint-every", "864000", // 10 d
        "--ckpt-dir", "ckpts",
    ];
    run_in(&clean, "1", &base);
    // One extra RNG draw at day 15 — inside the (10 d, 20 d] interval.
    let inject = format!("{}", 15 * DAY);
    let mut dirty_args: Vec<&str> = base.to_vec();
    dirty_args.extend_from_slice(&["--inject-divergence", &inject]);
    run_in(&dirty, "1", &dirty_args);

    let clean_ckpts = clean.join("ckpts");
    let dirty_ckpts = dirty.join("ckpts");
    let out = run_in(
        &clean,
        "1",
        &[
            "ckpt",
            "bisect",
            clean_ckpts.to_str().expect("utf8 path"),
            dirty_ckpts.to_str().expect("utf8 path"),
        ],
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("first divergence at checkpoint 1"),
        "bisect did not localize to checkpoint 1:\n{text}"
    );
    assert!(
        text.contains(&format!("({} s, {} s]", 10 * DAY, 20 * DAY)),
        "bisect interval wrong:\n{text}"
    );
    // A chain compared against itself reports no divergence.
    let same = run_in(
        &clean,
        "1",
        &[
            "ckpt",
            "bisect",
            clean_ckpts.to_str().expect("utf8 path"),
            clean_ckpts.to_str().expect("utf8 path"),
        ],
    );
    let text = String::from_utf8_lossy(&same.stdout);
    assert!(text.contains("no divergence"), "self-comparison diverged:\n{text}");
}

/// Telemetry accounting across the resume boundary: every `titan-obs/2`
/// time series is an exact bucketization of its run-end counter, even
/// when the run was split by `--from-checkpoint` — the restored
/// `TimeBuckets` carry the pre-boundary mass, and the resumed half
/// only adds to it. Verified on both the uninterrupted and the resumed
/// document (which are also byte-identical by the resume contract).
#[test]
fn timeseries_sums_match_counters_across_resume() {
    let through = tmp("ts_sum_through");
    let resumed = tmp("ts_sum_resumed");
    run_in(
        &through,
        "1",
        &[
            "run", "--days", "30", "--seed", "9", "--checkpoint-every", "864000", // 10 d
            "--ckpt-dir", "ckpts", "--metrics", "metrics.json",
        ],
    );
    let ckpt = through.join("ckpts").join("ckpt-000000.json");
    run_in(
        &resumed,
        "1",
        &[
            "run",
            "--from-checkpoint",
            ckpt.to_str().expect("utf8 path"),
            "--metrics",
            "metrics.json",
        ],
    );
    for dir in [&through, &resumed] {
        let text = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics doc");
        let doc: titan_obs::MetricsDoc =
            serde_json::from_str(&text).expect("titan-obs/2 metrics parse");
        assert!(!doc.timeseries.series.is_empty(), "no time series in {}", dir.display());
        for (name, buckets) in &doc.timeseries.series {
            let sum: u64 = buckets.iter().sum();
            let counter = doc
                .engine
                .get(name)
                .or_else(|| doc.faults.get(name))
                .or_else(|| doc.sec.get(name))
                .or_else(|| doc.nvsmi.get(name))
                .unwrap_or_else(|| panic!("series `{name}` has no run-end counter"));
            assert_eq!(
                sum, *counter,
                "series `{name}` buckets sum to {sum} but the run-end counter is {counter} \
                 ({})",
                dir.display()
            );
        }
    }
    // And the split run's document is the uninterrupted one, byte for
    // byte — the sums above are the same numbers.
    let x = std::fs::read(through.join("metrics.json")).expect("through metrics");
    let y = std::fs::read(resumed.join("metrics.json")).expect("resumed metrics");
    assert_eq!(x, y, "metrics diverged across the resume boundary");
}
