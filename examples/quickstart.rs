//! Quickstart: simulate two months of Titan operation and print the
//! headline reliability findings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use titan_gpu_reliability::render::Render;
use titan_gpu_reliability::{Study, StudyConfig};

fn main() {
    // 60 days, fixed seed — runs in a few seconds.
    let config = StudyConfig::quick(60, 2015);
    println!("simulating {} days of Titan operation…", 60);
    let study = Study::new(config).run();

    println!(
        "console events: {}   jobs completed: {}   parse skips: {}",
        study.data.console.len(),
        study.data.jobs.len(),
        study.data.console_parse.skipped,
    );

    let figures = study.figures();

    // Observation 1: double-bit-error MTBF.
    match figures.fig02_mtbf_hours {
        Some(h) => println!("\nDBE MTBF: {h:.0} hours (paper: ≈160 h)"),
        None => println!("\ntoo few DBEs in this short window for an MTBF"),
    }
    println!("{}", figures.fig02_dbe_monthly.render());

    // Observation 10: the SBE offender skew.
    let o = &figures.fig14_15_offenders;
    println!(
        "SBE-affected cards: {} ({:.1}% of fleet; paper: <5%)",
        o.cards_with_sbe,
        o.affected_fraction * 100.0
    );
    println!(
        "top-10 offender cards carry {:.0}% of all SBEs",
        o.top10_share * 100.0
    );

    // Observation 2: the logging gap.
    let acc = &figures.fig03_accounting;
    println!(
        "\nDBEs: console log {} vs nvidia-smi {} (nvidia-smi undercounts: {})",
        acc.console_dbe,
        acc.nvsmi_dbe,
        acc.nvsmi_undercounts()
    );

    // A first look at the checked expectations. Epoch-dependent checks
    // (page retirement from Jan'14, the Jun'14 driver update, Fig. 8's
    // retirement statistics) need the full 21-month window — run the
    // `figures` example for the complete 24/24 PASS registry.
    println!("\npaper-shape checks (60-day window; epoch checks need the full window):");
    for e in titan_gpu_reliability::evaluate_all(&figures) {
        println!("  [{}] {:<6} {}", e.verdict, e.id, e.measured);
    }
}
