//! Checkpoint advisor: the operational use of Observation 1.
//!
//! Measures the GPU-failure MTBF from the console log exactly as the
//! paper does, derives Young's and Daly's optimal checkpoint intervals,
//! replays periodic policies at several intervals against the *actual*
//! simulated failure trace, and compares against a lazy policy that
//! exploits temporal clustering.
//!
//! ```text
//! cargo run --release --example checkpoint_advisor [days] [seed]
//! ```

use titan_gpu_reliability::analysis::checkpoint::{
    daly_interval, evaluate_policy, interval_sweep, young_interval, CheckpointPolicy,
};
use titan_gpu_reliability::gpu::GpuErrorKind;
use titan_gpu_reliability::{Study, StudyConfig};

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!("simulating {days} days (seed {seed})…");
    let study = Study::new(StudyConfig::quick(days, seed)).run();

    // Hardware/driver failure *incidents*, fleet-wide: crash-class
    // events excluding application-caused XIDs (an app's own bug is not
    // a machine failure), deduplicated per job — one incident per crash,
    // not one per reporting node.
    let mut seen_apids = std::collections::HashSet::new();
    let mut failures: Vec<u64> = study
        .data
        .console
        .iter()
        .filter(|e| {
            e.kind.crashes_application()
                && e.kind != GpuErrorKind::EccPageRetirement
                && !e.kind.user_application_possible()
        })
        .filter(|e| match e.apid {
            Some(a) => seen_apids.insert(a),
            None => true, // idle-node failure: still a machine event
        })
        .map(|e| e.time)
        .collect();
    failures.sort_unstable();
    failures.dedup();

    let span = days * 86_400;
    let mtbf_secs = if failures.len() >= 2 {
        (failures.last().unwrap() - failures[0]) as f64 / (failures.len() - 1) as f64
    } else {
        span as f64
    };
    println!(
        "\n{} hardware/driver failure incidents; fleet MTBF {:.1} h",
        failures.len(),
        mtbf_secs / 3600.0
    );
    println!("(a full-machine application sees every fleet incident; smaller apps see proportionally fewer)");

    // A full-machine application: every fleet failure hits it.
    let cost = 300.0; // 5-minute checkpoint (burst buffer era: generous)
    let restart = 600.0;
    let young = young_interval(mtbf_secs, cost);
    let daly = daly_interval(mtbf_secs, cost);
    println!("Young interval: {:.0} s ({:.1} h)", young, young / 3600.0);
    println!("Daly  interval: {:.0} s ({:.1} h)", daly, daly / 3600.0);

    println!("\nperiodic-policy sweep (efficiency = useful work / wall clock):");
    let intervals = [young / 8.0, young / 4.0, young / 2.0, young, young * 2.0, young * 4.0];
    for (iv, out) in interval_sweep(&failures, span, cost, restart, &intervals) {
        let marker = if (iv - young).abs() < 1.0 { "  <- Young" } else { "" };
        println!(
            "  τ = {:>8.0} s: efficiency {:.4}, {} checkpoints, {:.0} s lost{}",
            iv, out.efficiency, out.checkpoints, out.lost_work_secs, marker
        );
    }

    let lazy = evaluate_policy(
        &failures,
        span,
        cost,
        restart,
        CheckpointPolicy::Lazy {
            base: young,
            stretch: 2.0,
            quiet_window: 6.0 * 3600.0,
        },
    );
    let periodic = evaluate_policy(
        &failures,
        span,
        cost,
        restart,
        CheckpointPolicy::Periodic { interval: young },
    );
    println!(
        "\nlazy policy (2x stretch for 6 h after a failure):\n  efficiency {:.4} vs periodic {:.4}; checkpoints {} vs {}",
        lazy.efficiency, periodic.efficiency, lazy.checkpoints, periodic.checkpoints
    );
    println!("\ndone.");
}
