//! Operator's fleet report: what OLCF's morning dashboard would show —
//! monthly error summary, SEC alarms, the offender watchlist, and the
//! hot-spare policy's paper trail.
//!
//! ```text
//! cargo run --release --example fleet_report [days] [seed]
//! ```

use titan_gpu_reliability::conlog::sec::{SecAction, SecEngine};
use titan_gpu_reliability::gpu::GpuErrorKind;
use titan_gpu_reliability::render::Render;
use titan_gpu_reliability::{Study, StudyConfig};

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(180);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("== Titan GPU fleet report ({days} days, seed {seed}) ==\n");
    let study = Study::new(StudyConfig::quick(days, seed)).run();
    let figures = study.figures();

    // --- Error volume overview ---------------------------------------
    println!("-- error volume by kind (console log) --");
    let mut by_kind: std::collections::HashMap<GpuErrorKind, usize> = Default::default();
    for e in &study.data.console {
        *by_kind.entry(e.kind).or_default() += 1;
    }
    let mut rows: Vec<(GpuErrorKind, usize)> = by_kind.into_iter().collect();
    rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (kind, count) in &rows {
        println!("  {count:>7}  {kind}");
    }

    // --- SEC alarm replay ----------------------------------------------
    println!("\n-- SEC alarm replay (OLCF default rules) --");
    let mut sec = SecEngine::olcf_default();
    let mut threshold_alarms = 0;
    let mut cluster_alarms = 0;
    let mut alerts = 0;
    for action in sec.ingest_all(&study.data.console) {
        match action {
            SecAction::ThresholdAlarm { node, kind, count, .. } => {
                threshold_alarms += 1;
                println!("  PULL-CARD alarm: node {node} reached {count}x {kind:?}");
            }
            SecAction::ClusterAlarm { time, kind, count } => {
                cluster_alarms += 1;
                println!("  CLUSTER alarm at t={time}: {count}x {kind:?} in 24 h");
            }
            SecAction::Alert { .. } => alerts += 1,
        }
    }
    println!(
        "  totals: {alerts} alerts, {threshold_alarms} pull-card alarms, {cluster_alarms} cluster alarms, {} duplicates folded",
        sec.suppressed
    );

    // --- Offender watchlist ---------------------------------------------
    println!("\n-- SBE offender watchlist (from nvidia-smi snapshots) --");
    let mut nodes: Vec<(u64, String)> = study
        .data
        .snapshots
        .iter()
        .filter(|s| s.total_sbe() > 0)
        .map(|s| (s.total_sbe(), s.node.location().cname()))
        .collect();
    nodes.sort_by_key(|&(c, _)| std::cmp::Reverse(c));
    for (sbe, cname) in nodes.iter().take(10) {
        println!("  {sbe:>8} SBEs  {cname}");
    }
    let o = &figures.fig14_15_offenders;
    println!(
        "  {} cards affected ({:.1}% of fleet); top-10 carry {:.0}% of volume",
        o.cards_with_sbe,
        o.affected_fraction * 100.0,
        o.top10_share * 100.0
    );

    // --- Hot-spare policy paper trail (ground truth: operator's records) --
    println!("\n-- hot-spare swaps --");
    if study.sim.truth.swaps.is_empty() {
        println!("  none in this window");
    }
    for s in &study.sim.truth.swaps {
        println!(
            "  t={} slot {} card {} -> spare {}{}",
            s.time,
            s.slot,
            s.old_card,
            s.new_card,
            if s.returned_to_vendor {
                "  (failed stress test; returned to vendor)"
            } else {
                ""
            }
        );
    }

    // --- Monthly DBE chart ------------------------------------------------
    println!("\n-- monthly double-bit errors --");
    println!("{}", figures.fig02_dbe_monthly.render());
}
