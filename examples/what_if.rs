//! What-if scenario explorer: the counterfactual questions the paper's
//! operators could not answer from field data alone, answered by
//! re-running the fleet with one mechanism toggled.
//!
//! * What if the off-the-bus soldering campaign had never happened?
//!   (The paper: the epidemic "resolved by soldering".)
//! * What does the pull-cards-after-DBEs policy actually buy?
//!   (The paper: "accurately quantifying the impact of such replacement
//!   is often very hard, since it is difficult to predict how many
//!   errors would have been avoided".)
//! * How much console volume do cascade children add?
//!
//! ```text
//! cargo run --release --example what_if [days] [seed]
//! ```

use titan_gpu_reliability::gpu::GpuErrorKind;
use titan_gpu_reliability::study::CompletedStudy;
use titan_gpu_reliability::{Study, StudyConfig};

fn run(days: u64, seed: u64, f: impl FnOnce(&mut StudyConfig)) -> CompletedStudy {
    let mut cfg = StudyConfig::quick(days, seed);
    cfg.skip_text_roundtrip = true; // counterfactuals need no text pass
    f(&mut cfg);
    Study::new(cfg).run()
}

fn count(s: &CompletedStudy, kind: GpuErrorKind) -> usize {
    s.data.console.iter().filter(|e| e.kind == kind).count()
}

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2015);

    println!("baseline: {days} days, seed {seed}");
    let base = run(days, seed, |_| {});
    println!(
        "  DBEs {}  OTB {}  retirements {}  swaps {}  console events {}",
        count(&base, GpuErrorKind::DoubleBitError),
        count(&base, GpuErrorKind::OffTheBus),
        count(&base, GpuErrorKind::EccPageRetirement),
        base.sim.truth.swaps.len(),
        base.data.console.len(),
    );

    // --- Scenario 1: hot-spare policy disabled -------------------------
    let no_policy = run(days, seed, |c| c.sim.enable_hot_spare_policy = false);
    let swaps = base.sim.truth.swaps.len();
    println!("\nscenario: no hot-spare pulls");
    println!(
        "  baseline pulled {swaps} card(s); without the policy those cards stay in production."
    );
    // Errors the hot-spare cluster absorbed in the baseline = burn-in
    // reproductions (ground truth).
    let returned = base
        .sim
        .truth
        .swaps
        .iter()
        .filter(|s| s.returned_to_vendor)
        .count();
    println!(
        "  {returned} pulled card(s) reproduced errors in burn-in — failures that would have hit production jobs (the paper's 'errors we avoided')."
    );
    println!(
        "  production DBE count without policy: {} (baseline {})",
        count(&no_policy, GpuErrorKind::DoubleBitError),
        count(&base, GpuErrorKind::DoubleBitError),
    );

    // --- Scenario 2: the soldering campaign never happens --------------
    // The OTB epidemic rate is an epoch in the fault model; we emulate
    // "no fix" by comparing the epidemic-era monthly rate against the
    // post-fix era of the same run.
    let otb_events: Vec<u64> = base
        .data
        .console
        .iter()
        .filter(|e| e.kind == GpuErrorKind::OffTheBus)
        .map(|e| e.time)
        .collect();
    let fix = titan_gpu_reliability::faults::calibration::otb_fix_date();
    let before = otb_events.iter().filter(|&&t| t < fix).count();
    let after = otb_events.len() - before;
    let epidemic_days = (fix.min(days * 86_400)) as f64 / 86_400.0;
    let post_days = (days as f64 - epidemic_days).max(1.0);
    let projected_unfixed = (before as f64 / epidemic_days * post_days).round();
    println!("\nscenario: soldering campaign never happens");
    println!(
        "  observed: {before} OTB failures in {epidemic_days:.0} epidemic days, {after} in {post_days:.0} post-fix days"
    );
    println!(
        "  projection at the epidemic rate: ~{projected_unfixed} additional OTB job kills after Dec'13"
    );

    // --- Scenario 3: cascades off ---------------------------------------
    let no_cascade = run(days, seed, |c| c.sim.enable_cascades = false);
    let delta = base.data.console.len() as i64 - no_cascade.data.console.len() as i64;
    println!("\nscenario: no parent→child cascades");
    println!(
        "  console volume {} -> {} ({} child events, {:.1}% of the log)",
        base.data.console.len(),
        no_cascade.data.console.len(),
        delta,
        100.0 * delta as f64 / base.data.console.len() as f64
    );
    println!(
        "  (this is the share the paper's §2.2 parent/child filtering exists to remove)"
    );

    println!("\ndone.");
}
