//! Regenerates every table and figure of the paper from a full-window
//! (Jun'13–Feb'15) simulation and writes them under `out/`.
//!
//! ```text
//! cargo run --release --example figures [seed]
//! ```
//!
//! Produces `out/figNN_*.{txt,csv}`, `out/expectations.md`, and
//! `out/figures.json` (the raw figure data).

use std::fs;
use std::path::Path;

use titan_gpu_reliability::expectations::{evaluate_all, render_markdown};
use titan_gpu_reliability::render::{grid_csv, monthly_csv, series_csv, Render};
use titan_gpu_reliability::{Study, StudyConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7174_414E);
    let out = Path::new("out");
    fs::create_dir_all(out).expect("create out/");

    println!("simulating the full Jun'13–Feb'15 window (seed {seed:#x})…");
    let mut config = StudyConfig::default();
    config.sim.seed = seed;
    let study = Study::new(config).run();
    println!(
        "  {} console events, {} jobs, {} snapshots",
        study.data.console.len(),
        study.data.jobs.len(),
        study.data.snapshots.len()
    );

    println!("computing figures…");
    let f = study.figures();

    let write = |name: &str, content: String| {
        fs::write(out.join(name), content).unwrap_or_else(|e| panic!("write {name}: {e}"));
    };

    // Monthly frequency figures.
    write("fig02_dbe_monthly.txt", f.fig02_dbe_monthly.render());
    write("fig02_dbe_monthly.csv", monthly_csv(&f.fig02_dbe_monthly));
    write("fig04_otb_monthly.txt", f.fig04_otb_monthly.render());
    write("fig04_otb_monthly.csv", monthly_csv(&f.fig04_otb_monthly));
    write("fig06_retire_monthly.txt", f.fig06_retire_monthly.render());
    write("fig06_retire_monthly.csv", monthly_csv(&f.fig06_retire_monthly));
    for s in &f.fig09_xid_monthly {
        let xid = s.kind.xid().map(|x| x.0).unwrap_or(0);
        write(&format!("fig09_xid{xid:02}_monthly.txt"), s.render());
        write(&format!("fig09_xid{xid:02}_monthly.csv"), monthly_csv(s));
    }
    write("fig10_xid13_monthly.txt", f.fig10_xid13_monthly.render());
    write("fig10_xid13_monthly.csv", monthly_csv(&f.fig10_xid13_monthly));
    for s in &f.fig11_uchalt_monthly {
        let xid = s.kind.xid().map(|x| x.0).unwrap_or(0);
        write(&format!("fig11_xid{xid}_monthly.txt"), s.render());
    }

    // Spatial figures.
    write("fig03a_dbe_grid.txt", f.fig03_dbe_grid.render());
    write("fig03a_dbe_grid.csv", grid_csv(&f.fig03_dbe_grid));
    write("fig03b_dbe_cage.txt", {
        let (all, distinct) = &f.fig03_dbe_cage;
        format!("All DBEs:\n{}\nDistinct cards:\n{}", all.render(), distinct.render())
    });
    write("fig05_otb_grid.txt", f.fig05_otb_grid.render());
    write("fig07_retire_grid.txt", f.fig07_retire_grid.render());
    write(
        "fig12_xid13_spatial.txt",
        format!(
            "UNFILTERED (top):\n{}\n5s-FILTERED (middle):\n{}\nCHILDREN <5s (bottom):\n{}",
            f.fig12_xid13_spatial.unfiltered.render(),
            f.fig12_xid13_spatial.filtered.render(),
            f.fig12_xid13_spatial.children.render()
        ),
    );

    // Fig. 8.
    let d = &f.fig08_delays;
    write(
        "fig08_retire_after_dbe.txt",
        format!(
            "retirement delay after DBE:\n  <=10min   : {}\n  10min-6h  : {}\n  later     : {}\n  no preceding DBE (pure 2-SBE): {}\n  DBE pairs without retirement : {}\n  raw delays (s): {:?}\n",
            d.within_10min, d.min10_to_6h, d.later, d.no_preceding_dbe,
            d.dbe_pairs_without_retirement, d.delays
        ),
    );

    // Fig. 13.
    write("fig13_heatmap_top.txt", f.fig13_heatmap.render());
    write(
        "fig13_heatmap_bottom.txt",
        f.fig13_heatmap.without_diagonal().render(),
    );

    // Figs. 14–15.
    let o = &f.fig14_15_offenders;
    for level in &o.levels {
        write(
            &format!("fig14_sbe_grid_top{}_removed.txt", level.removed),
            level.grid.render(),
        );
        write(
            &format!("fig15_sbe_cage_top{}_removed.txt", level.removed),
            format!(
                "SBE totals by cage:\n{}\nDistinct cards by cage:\n{}",
                level.cage_totals.render(),
                level.cage_distinct.render()
            ),
        );
    }

    // Figs. 16–19.
    for (panel, name) in f
        .fig16_19_correlation
        .all_jobs
        .iter()
        .zip(["fig16_maxmem", "fig17_totalmem", "fig18_nodes", "fig19_corehours"])
    {
        write(
            &format!("{name}.csv"),
            series_csv(&panel.metric_norm, &panel.sbe_norm),
        );
        write(
            &format!("{name}.txt"),
            format!(
                "{} vs SBE  Spearman {:?}  Pearson {:?}\n",
                panel.metric.label(),
                panel.spearman.map(|r| (r.r, r.p_value)),
                panel.pearson.map(|r| (r.r, r.p_value)),
            ),
        );
    }

    // Fig. 20.
    let u = &f.fig20_user;
    write(
        "fig20_user.txt",
        format!(
            "user-level Spearman: all {:?}, excluding top-10 offenders {:?}\nusers: {}\n",
            u.spearman_all.map(|r| r.r),
            u.spearman_excluding_top10.map(|r| r.r),
            u.rows.len()
        ),
    );
    write("fig20_user.csv", {
        let mut s = String::from("user,core_hours,sbe,jobs\n");
        for r in &u.rows {
            s.push_str(&format!("{},{},{},{}\n", r.user, r.core_hours, r.sbe, r.jobs));
        }
        s
    });

    // Fig. 21.
    let w = &f.fig21_workload;
    write(
        "fig21_workload.txt",
        format!(
            "jobs {}\nSpearman(core-hours, nodes) {:?}\nmem-heavy core-hour ratio {:.3}\nmem-heavy node ratio {:.3}\nlongest-jobs-small fraction {:.3}\n",
            w.n_jobs,
            w.corehours_nodes_spearman,
            w.memheavy_corehours_ratio,
            w.memheavy_nodes_ratio,
            w.longest_jobs_small_fraction
        ),
    );

    // Raw data + the expectation registry.
    write(
        "figures.json",
        serde_json::to_string_pretty(&f).expect("figures serialize"),
    );
    let exps = evaluate_all(&f);
    write("expectations.md", render_markdown(&exps));

    println!("\npaper-shape verdicts:");
    let mut pass = 0;
    let mut weak = 0;
    let mut fail = 0;
    for e in &exps {
        println!("  [{}] {:<6} {}", e.verdict, e.id, e.measured);
        match e.verdict {
            titan_gpu_reliability::Verdict::Pass => pass += 1,
            titan_gpu_reliability::Verdict::Weak => weak += 1,
            titan_gpu_reliability::Verdict::Fail => fail += 1,
        }
    }
    println!("\n{pass} PASS / {weak} WEAK / {fail} FAIL — artifacts in out/");
}
