//! Single-incident forensics: follow one double-bit error through every
//! data source — the console-log lines, the crashed job's record, the
//! page-retirement follow-up, and the card's nvidia-smi view.
//!
//! This is the workflow the paper's §3.1 describes: operators "decode the
//! error log for DBE occurrences" and cross-check against nvidia-smi.
//!
//! ```text
//! cargo run --release --example error_forensics [days] [seed]
//! ```

use titan_gpu_reliability::conlog::format::render_line;
use titan_gpu_reliability::conlog::time::StudyCalendar;
use titan_gpu_reliability::gpu::GpuErrorKind;
use titan_gpu_reliability::{Study, StudyConfig};

fn main() {
    let days: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let cal = StudyCalendar;

    println!("simulating {days} days (seed {seed})…\n");
    let study = Study::new(StudyConfig::quick(days, seed)).run();

    // Pick the first DBE that crashed a running job.
    let dbe = study
        .data
        .console
        .iter()
        .find(|e| e.kind == GpuErrorKind::DoubleBitError && e.apid.is_some());
    let Some(dbe) = dbe else {
        println!("no job-crashing DBE in this window; try more days");
        return;
    };
    let node = dbe.node;
    let apid = dbe.apid.expect("selected with apid");

    println!("== incident: double bit error on {node} ==");
    println!("  at {}", cal.format_timestamp(dbe.time));
    println!("  console line:\n    {}", render_line(dbe));

    // Console context: everything on this node or job within ±10 minutes.
    println!("\n-- console context (±10 min, same node or job) --");
    for e in &study.data.console {
        let related = e.node == node || e.apid == Some(apid);
        if related && e.time + 600 >= dbe.time && e.time <= dbe.time + 600 {
            println!("    {}", render_line(e));
        }
    }

    // The crashed job.
    println!("\n-- job record --");
    match study.data.jobs.iter().find(|j| j.apid == apid) {
        Some(j) => {
            println!(
                "    apid {} user {} nodes {} wall {}s (requested window ended early: crash)",
                j.apid,
                j.user,
                j.node_count(),
                j.wall_seconds()
            );
            println!(
                "    gpu core-hours {:.1}, peak memory {} MiB/node",
                j.gpu_core_hours,
                j.max_memory_bytes >> 20
            );
            assert_eq!(j.end, dbe.time, "job record must end at the DBE");
        }
        None => println!("    job record missing (job never completed in window)"),
    }

    // Retirement follow-up on the node.
    println!("\n-- page retirement follow-up --");
    let retire = study.data.console.iter().find(|e| {
        e.kind == GpuErrorKind::EccPageRetirement && e.node == node && e.time >= dbe.time
    });
    match retire {
        Some(r) => println!(
            "    retirement recorded {}s after the DBE:\n    {}",
            r.time - dbe.time,
            render_line(r)
        ),
        None => println!(
            "    no retirement record (pre-Jan'14 driver, register-file strike, or the record was lost — the paper found 17 such cases)"
        ),
    }

    // The card's nvidia-smi view at end of study.
    println!("\n-- nvidia-smi view of the slot at end of study --");
    match study.data.snapshots.iter().find(|s| s.node == node) {
        Some(s) => {
            println!(
                "    aggregate: {} SBEs, {} DBEs; retired pages: {:?} (dbe, sbe)",
                s.total_sbe(),
                s.total_dbe(),
                s.retired_pages
            );
            if s.total_dbe() == 0 {
                println!(
                    "    note: console saw a DBE here but the InfoROM did not persist it"
                );
                println!("    (Observation 2: the node shut down before the NVML write)");
            }
            if let Some((_, serial)) = Some((0, s.serial)) {
                println!("    card serial {serial} — history follows the card, not the slot");
            }
        }
        None => println!("    slot not found (card swapped to hot-spare cluster)"),
    }

    println!("\ndone.");
}
